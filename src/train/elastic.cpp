#include "train/elastic.hpp"

#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>

#include "ckpt/checkpoint.hpp"
#include "ckpt/io_fault.hpp"
#include "comm/watchdog.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_context.hpp"

namespace geofm::train {
namespace {

struct Outcome {
  enum class Kind { kCompleted, kKilled, kAborted, kFailed };
  Kind kind = Kind::kFailed;
  std::exception_ptr error;
  std::string what;
  DistributedPretrainResult result;
};

struct Assignment {
  comm::Communicator comm;
  DistributedPretrainConfig train;
  // Probationary rendezvous instead of a training attempt: run the
  // health-check hook, then barrier + all-reduce with the supervisor.
  bool probe = false;
};

// Supervisor <-> worker handoff: one slot per identity. Workers block
// until their slot holds an assignment (or they are retired), run the
// attempt (or probe), and report an outcome. Identities with neither an
// assignment nor retirement are *parked*: they sit in the wait, belong
// to no communicator group, and are invisible to every watchdog.
struct Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::optional<Assignment>> work;
  std::vector<std::optional<Outcome>> outcome;
  std::vector<char> retired;
  double first_failure_ts = 0;  // monotonic_seconds of the first report
};

/// Largest k in [1, avail] such that world+k respects max_world and
/// divides the global batch; 0 when no growth is possible.
int admissible_growth(int world, int avail, int max_world, i64 global_batch) {
  for (int k = avail; k >= 1; --k) {
    const int grown = world + k;
    if (grown <= max_world && global_batch % grown == 0) return k;
  }
  return 0;
}

/// Scoped arming of the flight recorder (and the tracing it feeds) for
/// one elastic run, so every detect -> quarantine -> reform cycle leaves
/// a postmortem bundle. If tracing was off, it is enabled with a reduced
/// per-thread buffer — the persistent worker threads would otherwise
/// allocate the default 64k-event track each — and both the enablement
/// and the capacity are restored on exit. Recorders already armed by the
/// caller (GEOFM_TRACE / GEOFM_POSTMORTEM / tests) are left untouched.
class FlightScope {
 public:
  explicit FlightScope(bool arm) : arm_(arm) {
    if (!arm_) return;
    auto& flight = obs::FlightRecorder::instance();
    flight_was_enabled_ = flight.enabled();
    if (!flight_was_enabled_) flight.enable();
    trace_was_enabled_ = obs::trace_enabled();
    if (!trace_was_enabled_) {
      auto& rec = obs::TraceRecorder::instance();
      old_capacity_ = rec.buffer_capacity();
      rec.set_buffer_capacity(16384);
      rec.enable();
    }
  }
  ~FlightScope() {
    if (!arm_) return;
    if (!trace_was_enabled_) {
      auto& rec = obs::TraceRecorder::instance();
      rec.disable();
      rec.set_buffer_capacity(old_capacity_);
    }
    if (!flight_was_enabled_) obs::FlightRecorder::instance().disable();
  }
  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;

 private:
  bool arm_ = false;
  bool flight_was_enabled_ = false;
  bool trace_was_enabled_ = false;
  u64 old_capacity_ = 0;
};

}  // namespace

ElasticResult run_elastic(const ElasticConfig& cfg,
                          const data::SceneDataset& corpus) {
  const int spares = cfg.readmission.spare_identities;
  const int total_ids = cfg.world + spares;
  const int max_world =
      cfg.readmission.max_world > 0 ? cfg.readmission.max_world : cfg.world;
  GEOFM_CHECK(cfg.world >= 1, "elastic world must be positive");
  GEOFM_CHECK(spares >= 0, "spare_identities must be >= 0");
  GEOFM_CHECK(cfg.min_world >= 1 && cfg.min_world <= cfg.world,
              "elastic min_world out of range");
  GEOFM_CHECK(cfg.train.global_batch % cfg.world == 0,
              "global batch " << cfg.train.global_batch
                              << " not divisible by the initial world "
                              << cfg.world);
  GEOFM_CHECK(cfg.train.fault_injector == nullptr &&
                  cfg.train.resume_from.empty() && !cfg.train.recovery_resume,
              "run_elastic owns the train config's fault/resume fields; "
              "use ElasticConfig.faults / checkpoint_dir");
  for (const auto& e : cfg.faults.events) {
    GEOFM_CHECK(e.rank < total_ids,
                "fault plan targets rank " << e.rank
                                           << " beyond the identity space");
  }

  obs::set_thread_label("elastic.supervisor");

  // Postmortem bundles land next to the checkpoints; no checkpoint dir
  // means nowhere durable to archive, so the recorder stays as-is (env
  // GEOFM_POSTMORTEM still works independently).
  const std::string pm_dir = cfg.train.checkpoint_dir.empty()
                                 ? std::string()
                                 : cfg.train.checkpoint_dir + "/postmortem";
  FlightScope flight_scope(!pm_dir.empty());

  Shared sh;
  sh.work.resize(static_cast<size_t>(total_ids));
  sh.outcome.resize(static_cast<size_t>(total_ids));
  sh.retired.assign(static_cast<size_t>(total_ids), 0);

  auto worker = [&](int identity) {
    for (;;) {
      std::optional<Assignment> a;
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        sh.cv.wait(lk, [&] {
          return sh.retired[static_cast<size_t>(identity)] ||
                 sh.work[static_cast<size_t>(identity)].has_value();
        });
        if (sh.retired[static_cast<size_t>(identity)]) return;
        a = std::move(sh.work[static_cast<size_t>(identity)]);
        sh.work[static_cast<size_t>(identity)].reset();
      }
      // The thread re-labels per attempt: its rank changes as the world
      // shrinks or grows, while its identity (and fault targeting) stays
      // fixed.
      set_thread_rank(a->comm.rank());
      obs::set_thread_label(a->probe ? "rank.probe" : "rank");
      Outcome out;
      if (a->probe) {
        try {
          if (cfg.readmission.probation_hook) {
            cfg.readmission.probation_hook(identity);
          }
          a->comm.barrier();
          Tensor token = Tensor::full({1}, 1.0f);
          a->comm.all_reduce(token);
          out.kind = Outcome::Kind::kCompleted;
        } catch (const comm::Aborted& e) {
          out.kind = Outcome::Kind::kAborted;
          out.what = e.what();
        } catch (const std::exception& e) {
          out.kind = Outcome::Kind::kFailed;
          out.what = e.what();
          // Unblock the supervisor and fellow candidates immediately
          // rather than waiting for the probation watchdog.
          a->comm.abort(std::string("probation failure on identity ") +
                        std::to_string(identity) + ": " + e.what());
        }
      } else {
        try {
          Rng rng(cfg.model_seed);
          models::MAE mae(cfg.model, rng);
          parallel::Fsdp fsdp(mae, a->comm, cfg.fsdp);
          out.result =
              pretrain_mae_distributed(mae, fsdp, a->comm, corpus, a->train);
          out.kind = Outcome::Kind::kCompleted;
        } catch (const comm::RankKilled& e) {
          out.kind = Outcome::Kind::kKilled;
          out.error = std::current_exception();
          out.what = e.what();
        } catch (const comm::Aborted& e) {
          out.kind = Outcome::Kind::kAborted;
          out.error = std::current_exception();
          out.what = e.what();
        } catch (const std::exception& e) {
          out.kind = Outcome::Kind::kFailed;
          out.error = std::current_exception();
          out.what = e.what();
        } catch (...) {
          out.kind = Outcome::Kind::kFailed;
          out.error = std::current_exception();
        }
      }
      a.reset();  // drop the attempt's communicator before reporting
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        if (out.kind != Outcome::Kind::kCompleted &&
            sh.first_failure_ts == 0) {
          sh.first_failure_ts = monotonic_seconds();
        }
        sh.outcome[static_cast<size_t>(identity)] = std::move(out);
      }
      sh.cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(total_ids));
  for (int id = 0; id < total_ids; ++id) threads.emplace_back(worker, id);
  auto join_all = [&] {
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      std::fill(sh.retired.begin(), sh.retired.end(), 1);
    }
    sh.cv.notify_all();
    for (auto& t : threads) t.join();
  };

  auto& registry = obs::MetricsRegistry::instance();
  auto& rec_count = registry.counter("recovery.count");
  auto& rec_seconds = registry.counter("recovery.seconds");
  auto& rec_world = registry.gauge("recovery.world");
  auto& readmit_count = registry.counter("readmit.count");
  auto& readmit_seconds = registry.counter("readmit.seconds");
  auto& readmit_rejected = registry.counter("readmit.probation_failures");

  ElasticResult res;
  res.fired_plan.seed = cfg.faults.seed;
  std::vector<int> live(static_cast<size_t>(cfg.world));
  for (int id = 0; id < cfg.world; ++id) live[static_cast<size_t>(id)] = id;
  // Identities awaiting (re-)admission: spare identities from the start,
  // plus quarantined ones when the policy re-admits them.
  std::vector<int> parked;
  for (int id = cfg.world; id < total_ids; ++id) parked.push_back(id);
  std::vector<int> pending_readmitted;  // admitted, next attempt not yet run
  int readmit_rounds = 0;
  std::vector<comm::FaultEvent> remaining = cfg.faults.events;
  double pending_failure_ts = 0;  // consumed when the next attempt starts

  // Rejects `failed` candidates permanently: retired, counted, recorded.
  auto reject_candidates = [&](const std::vector<int>& failed) {
    if (failed.empty()) return;
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      for (int id : failed) sh.retired[static_cast<size_t>(id)] = 1;
    }
    sh.cv.notify_all();
    for (int id : failed) {
      parked.erase(std::remove(parked.begin(), parked.end(), id),
                   parked.end());
      res.probation_rejected.push_back(id);
    }
    readmit_rejected.add(static_cast<double>(failed.size()));
  };

  // Probationary rendezvous: candidates + supervisor form a probe group,
  // run the health hook, and complete barrier + all-reduce under the
  // probation watchdog. Flaky candidates are rejected and the healthy
  // remainder retried, so one bad returner cannot block the others.
  auto run_probation = [&](std::vector<int> cand) -> std::vector<int> {
    while (!cand.empty()) {
      const int n = static_cast<int>(cand.size());
      auto pgroup = comm::make_group(n + 1);
      comm::Communicator pad(pgroup, n);  // the supervisor's probe rank
      if (cfg.readmission.probation_deadline_seconds > 0) {
        comm::WatchdogOptions wopts;
        wopts.deadline_seconds = cfg.readmission.probation_deadline_seconds;
        pad.start_watchdog(wopts);
      }
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        for (int i = 0; i < n; ++i) {
          const auto id = static_cast<size_t>(cand[static_cast<size_t>(i)]);
          sh.outcome[id].reset();
          sh.work[id] = Assignment{comm::Communicator(pgroup, i), cfg.train,
                                   /*probe=*/true};
        }
      }
      sh.cv.notify_all();
      bool supervisor_ok = true;
      try {
        pad.barrier();
        Tensor token = Tensor::full({1}, 1.0f);
        pad.all_reduce(token);
      } catch (const comm::Aborted&) {
        supervisor_ok = false;
      }
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        sh.cv.wait(lk, [&] {
          return std::all_of(cand.begin(), cand.end(), [&](int id) {
            return sh.outcome[static_cast<size_t>(id)].has_value();
          });
        });
      }
      std::vector<int> failed;
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        for (int id : cand) {
          const Outcome& o = *sh.outcome[static_cast<size_t>(id)];
          if (o.kind == Outcome::Kind::kFailed ||
              o.kind == Outcome::Kind::kKilled) {
            failed.push_back(id);
          }
        }
      }
      for (int r : pad.abort_suspects()) {
        if (r >= 0 && r < n) failed.push_back(cand[static_cast<size_t>(r)]);
      }
      std::sort(failed.begin(), failed.end());
      failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
      if (supervisor_ok && failed.empty()) return cand;  // all admitted
      if (failed.empty()) failed = cand;  // undiagnosable: reject the round
      if (cfg.train.verbose) {
        std::string f;
        for (int id : failed) f += (f.empty() ? "" : ",") + std::to_string(id);
        GEOFM_WARN("elastic: probation rejected identity(s) " << f);
      }
      reject_candidates(failed);
      std::vector<int> rest;
      for (int id : cand) {
        if (!std::binary_search(failed.begin(), failed.end(), id)) {
          rest.push_back(id);
        }
      }
      cand = std::move(rest);
    }
    return {};
  };

  try {
    for (;;) {
      const int w = static_cast<int>(live.size());
      ElasticAttempt att;
      att.world = w;
      att.readmitted = pending_readmitted;
      pending_readmitted.clear();

      // ----- re-form: fresh group over survivors, watchdog re-armed ------
      std::shared_ptr<geofm::comm::detail::CommGroup> group;
      comm::FaultPlan attempt_plan;
      attempt_plan.seed = cfg.faults.seed;
      std::vector<comm::FaultEvent> attempt_events_by_identity;
      // Pending events whose identity is not in this attempt are held
      // back, NOT dropped: a re-admitted identity's events must fire
      // when it returns.
      std::vector<comm::FaultEvent> held_events;
      {
        std::optional<obs::TraceScope> reform;
        if (!res.attempts.empty()) {
          reform.emplace("recover.reform", "recover", "world", w);
        }
        group = comm::make_group(w);
        // Events still pending whose identity is in this attempt,
        // remapped to attempt ranks (identity live[r] is rank r).
        for (const comm::FaultEvent& e : remaining) {
          const auto it = std::find(live.begin(), live.end(), e.rank);
          if (it == live.end() && e.rank != -1) {
            held_events.push_back(e);
            continue;
          }
          comm::FaultEvent mapped = e;
          if (e.rank != -1) {
            mapped.rank = static_cast<int>(it - live.begin());
          }
          attempt_plan.events.push_back(std::move(mapped));
          attempt_events_by_identity.push_back(e);
        }
      }
      comm::Communicator probe(group, 0);  // supervisor handle: watchdog,
                                           // abort diagnosis (never posts)
      if (cfg.watchdog_deadline_seconds > 0) {
        comm::WatchdogOptions wopts;
        wopts.deadline_seconds = cfg.watchdog_deadline_seconds;
        probe.start_watchdog(wopts);
      }
      std::shared_ptr<comm::FaultInjector> injector;
      if (!attempt_plan.events.empty()) {
        injector = std::make_shared<comm::FaultInjector>(attempt_plan);
      }
      // The same injector serves the storage path: checkpoint writes,
      // restore reads, and uploader copies consult it via the io-fault
      // seam. Re-installed (or cleared) per attempt so IO op counters
      // reset with the post counters.
      ckpt::install_io_fault_injector(injector);

      DistributedPretrainConfig tc = cfg.train;
      tc.fault_injector = injector;
      tc.watchdog_deadline_seconds = cfg.watchdog_deadline_seconds;
      tc.recovery_resume = !res.attempts.empty();
      i64 resume_step = 0;
      if (!cfg.train.checkpoint_dir.empty()) {
        // Resume scans the primary root and, when configured, the upload
        // mirror: a wiped or torn primary no longer costs the whole
        // campaign when the uploader drained the step off-node. Mirror
        // candidates are checksum-verified before being trusted — an
        // interrupted mirror copy must not become the resume source.
        std::vector<std::string> roots{cfg.train.checkpoint_dir};
        if (cfg.train.upload.enabled()) {
          roots.push_back(cfg.train.upload.destination);
        }
        for (const ckpt::PublishedSource& cand :
             ckpt::published_sources(roots)) {
          if (cand.source > 0) {
            try {
              ckpt::verify_checkpoint_dir(cand.dir);
            } catch (const std::exception& e) {
              GEOFM_WARN("elastic: mirror resume candidate " << cand.dir
                         << " failed verification: " << e.what());
              continue;
            }
          }
          // Pin the resume source now: later saves may add newer steps
          // (or retention may GC this one), and the attempt record must
          // name what was actually restored.
          att.resumed_from = cand.dir;
          tc.resume_from = att.resumed_from;
          resume_step = cand.step + 1;
          break;
        }
      }

      // ----- grow-back window: stop at the next checkpoint boundary ------
      // When parked identities could re-join, cut this attempt at the
      // next step the driver checkpoints; its completion is then a
      // boundary stop where probation + admission run.
      if (cfg.readmission.enabled() && !parked.empty() &&
          cfg.train.checkpoint_every_n_steps > 0 &&
          !cfg.train.checkpoint_dir.empty() &&
          readmit_rounds < cfg.readmission.max_readmissions &&
          admissible_growth(w, static_cast<int>(parked.size()), max_world,
                            cfg.train.global_batch) > 0) {
        const i64 n = cfg.train.checkpoint_every_n_steps;
        const i64 boundary = (resume_step / n + 1) * n;
        if (boundary < cfg.train.steps) {
          tc.steps = boundary;
          att.truncated_for_growth = true;
        }
      }

      // ----- launch the attempt ------------------------------------------
      if (!pm_dir.empty()) {
        // A stale capture (probation abort, an earlier run in-process)
        // must not shadow this attempt's failure: first capture wins.
        obs::FlightRecorder::instance().discard();
      }
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        sh.first_failure_ts = 0;
        for (int r = 0; r < w; ++r) {
          sh.outcome[static_cast<size_t>(live[static_cast<size_t>(r)])]
              .reset();
          sh.work[static_cast<size_t>(live[static_cast<size_t>(r)])] =
              Assignment{comm::Communicator(group, r), tc, /*probe=*/false};
        }
      }
      sh.cv.notify_all();
      if (pending_failure_ts > 0) {
        const double s = monotonic_seconds() - pending_failure_ts;
        res.recovery_seconds += s;
        rec_seconds.add(s);
        pending_failure_ts = 0;
      }

      // ----- wait for every rank's outcome; time failure detection -------
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        std::optional<obs::TraceScope> detect;
        auto all_reported = [&] {
          return std::all_of(live.begin(), live.end(), [&](int id) {
            return sh.outcome[static_cast<size_t>(id)].has_value();
          });
        };
        while (!all_reported()) {
          sh.cv.wait(lk);
          if (!detect && sh.first_failure_ts > 0) {
            detect.emplace("recover.detect", "recover", "world", w);
          }
        }
        pending_failure_ts = sh.first_failure_ts;
      }

      if (injector) {
        const std::vector<bool> fired = injector->fired();
        std::vector<comm::FaultEvent> next;
        for (size_t i = 0; i < attempt_events_by_identity.size(); ++i) {
          if (i < fired.size() && fired[i]) {
            ++att.faults_fired;
            res.fired_plan.events.push_back(attempt_events_by_identity[i]);
          } else {
            next.push_back(attempt_events_by_identity[i]);
          }
        }
        remaining = std::move(next);
        remaining.insert(remaining.end(), held_events.begin(),
                         held_events.end());
      }

      // ----- collect ------------------------------------------------------
      std::vector<int> dead;
      std::exception_ptr hard_failure;
      std::exception_ptr any_error;
      bool all_completed = true;
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        for (int id : live) {
          const Outcome& o = *sh.outcome[static_cast<size_t>(id)];
          if (o.kind != Outcome::Kind::kCompleted) {
            all_completed = false;
            if (att.failure.empty()) att.failure = o.what;
            if (!any_error) any_error = o.error;
          }
          if (o.kind == Outcome::Kind::kKilled) dead.push_back(id);
          if (o.kind == Outcome::Kind::kFailed && !hard_failure) {
            hard_failure = o.error;
          }
        }
        if (all_completed) {
          const Outcome& o0 = *sh.outcome[static_cast<size_t>(live[0])];
          att.completed = true;
          att.start_step = o0.result.start_step;
          att.losses = o0.result.step_losses;
          if (!att.truncated_for_growth) res.final_result = o0.result;
        }
      }
      // ----- postmortem: archive the failure's flight capture -------------
      // One bundle per recovery attempt: whatever the abort path froze
      // (watchdog diagnosis, in-flight rendezvous state, last-N spans,
      // metrics) — or a synthesized capture when the failure never went
      // through the comm abort hook (e.g. a checkpoint error). Archiving
      // failures are warned, never fatal: evidence must not kill recovery.
      if (!all_completed && !pm_dir.empty()) {
        auto& flight = obs::FlightRecorder::instance();
        if (!flight.has_capture()) flight.capture_now(att.failure);
        // The realized fault schedule rides along in the bundle (minus
        // unserializable kCallback events), identity-keyed — which is
        // exactly the replayable form: chaos::plan_from_postmortem turns
        // the bundle back into a campaign that reproduces this failure.
        std::string fired_json;
        {
          comm::FaultPlan realized;
          realized.seed = res.fired_plan.seed;
          for (const auto& e : res.fired_plan.events) {
            if (e.kind != comm::FaultEvent::Kind::kCallback) {
              realized.events.push_back(e);
            }
          }
          fired_json = comm::plan_to_json(realized);
        }
        try {
          att.postmortem = flight.archive(
              pm_dir, {{"attempt", std::to_string(res.attempts.size())},
                       {"world", std::to_string(w)},
                       {"resumed_from", att.resumed_from},
                       {"failure", att.failure},
                       {"fired_plan", fired_json}});
          if (cfg.train.verbose) {
            GEOFM_INFO("elastic: postmortem bundle at " << att.postmortem);
          }
        } catch (const std::exception& e) {
          GEOFM_WARN("elastic: postmortem archive failed: " << e.what());
        }
      }

      if (all_completed && att.truncated_for_growth) {
        // ----- boundary stop: probation + admission ----------------------
        pending_failure_ts = 0;
        const bool was_verbose = cfg.train.verbose;
        const double t0 = monotonic_seconds();
        std::vector<int> joining;
        {
          obs::TraceScope readmit(
              "recover.readmit", "recover", "world", w, "candidates",
              static_cast<i64>(parked.size()));
          ++readmit_rounds;
          std::vector<int> cand = parked;
          std::sort(cand.begin(), cand.end());
          const std::vector<int> admitted = run_probation(cand);
          const int k =
              admissible_growth(w, static_cast<int>(admitted.size()),
                                max_world, cfg.train.global_batch);
          joining.assign(admitted.begin(), admitted.begin() + k);
          // Admitted-but-unjoinable candidates (divisibility, max_world)
          // stay parked for a later boundary.
          for (int id : joining) {
            parked.erase(std::remove(parked.begin(), parked.end(), id),
                         parked.end());
          }
        }
        readmit_seconds.add(monotonic_seconds() - t0);
        res.attempts.push_back(std::move(att));
        if (!joining.empty()) {
          live.insert(live.end(), joining.begin(), joining.end());
          std::sort(live.begin(), live.end());
          pending_readmitted = joining;
          ++res.readmissions;
          readmit_count.add(1);
          rec_world.set(static_cast<double>(live.size()));
          if (was_verbose) {
            std::string j;
            for (int id : joining) {
              j += (j.empty() ? "" : ",") + std::to_string(id);
            }
            GEOFM_INFO("elastic: re-admitted identity(s) "
                       << j << " at step boundary; growing to world "
                       << live.size());
          }
        }
        continue;
      }
      if (all_completed) {
        res.final_identities = live;
        res.attempts.push_back(std::move(att));
        if (!pm_dir.empty()) {
          // End-of-run health report next to the bundles: cross-rank step
          // time percentiles, phase breakdown, straggler detection, and
          // the recovery timeline reconstructed from recover.* spans.
          try {
            std::filesystem::create_directories(pm_dir);
            write_file(pm_dir + "/run_health.json",
                       obs::report_to_json(obs::build_run_health_report()));
          } catch (const std::exception& e) {
            GEOFM_WARN("elastic: run-health report failed: " << e.what());
          }
        }
        break;
      }
      if (hard_failure) {
        res.attempts.push_back(std::move(att));
        std::rethrow_exception(hard_failure);  // not a comm fault: fatal
      }
      for (int r : probe.abort_suspects()) {
        // Watchdog suspects are attempt ranks mapped to global identities
        // already (subgroup diagnoses map through global_ranks), and the
        // attempt group's global ranks are its own 0..w-1 — translate
        // through live[].
        if (r >= 0 && r < w) dead.push_back(live[static_cast<size_t>(r)]);
      }
      std::sort(dead.begin(), dead.end());
      dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
      if (dead.empty()) {
        // Aborted survivors but nobody diagnosably dead: nothing to
        // quarantine, so retrying would fail identically. Propagate.
        res.attempts.push_back(std::move(att));
        if (any_error) std::rethrow_exception(any_error);
        throw Error("elastic: attempt failed with no diagnosable fault");
      }

      // ----- quarantine + shrink -----------------------------------------
      att.quarantined = dead;
      std::vector<int> survivors;
      for (int id : live) {
        if (!std::binary_search(dead.begin(), dead.end(), id)) {
          survivors.push_back(id);
        }
      }
      while (!survivors.empty() &&
             cfg.train.global_batch %
                     static_cast<i64>(survivors.size()) != 0) {
        att.quarantined.push_back(survivors.back());
        survivors.pop_back();
      }
      if (cfg.train.verbose) {
        std::string q;
        for (int id : att.quarantined) {
          q += (q.empty() ? "" : ",") + std::to_string(id);
        }
        GEOFM_INFO("elastic: quarantining rank(s) "
                   << q << " after '" << att.failure << "'; re-forming at "
                   << "world " << survivors.size());
      }
      if (cfg.readmission.readmit_quarantined) {
        // Quarantined identities stay parked (threads alive, in no comm
        // group) so a later checkpoint boundary can re-admit them.
        for (int id : att.quarantined) parked.push_back(id);
      } else {
        std::lock_guard<std::mutex> lk(sh.mu);
        for (int id : att.quarantined) {
          sh.retired[static_cast<size_t>(id)] = 1;
        }
      }
      sh.cv.notify_all();
      res.attempts.push_back(std::move(att));
      live = std::move(survivors);
      if (static_cast<int>(live.size()) < cfg.min_world) {
        throw Error("elastic: world shrank below min_world (" +
                    std::to_string(live.size()) + " < " +
                    std::to_string(cfg.min_world) + ")");
      }
      if (res.recoveries >= cfg.max_recoveries) {
        throw Error("elastic: exceeded max_recoveries (" +
                    std::to_string(cfg.max_recoveries) + ")");
      }
      ++res.recoveries;
      rec_count.add(1);
      rec_world.set(static_cast<double>(live.size()));
    }
  } catch (...) {
    ckpt::install_io_fault_injector(nullptr);
    join_all();
    throw;
  }
  ckpt::install_io_fault_injector(nullptr);
  join_all();
  return res;
}

}  // namespace geofm::train
