#include "train/elastic.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "ckpt/checkpoint.hpp"
#include "comm/watchdog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_context.hpp"

namespace geofm::train {
namespace {

struct Outcome {
  enum class Kind { kCompleted, kKilled, kAborted, kFailed };
  Kind kind = Kind::kFailed;
  std::exception_ptr error;
  std::string what;
  DistributedPretrainResult result;
};

struct Assignment {
  comm::Communicator comm;
  DistributedPretrainConfig train;
};

// Supervisor <-> worker handoff: one slot per identity. Workers block
// until their slot holds an assignment (or they are retired), run the
// attempt, and report an outcome.
struct Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::optional<Assignment>> work;
  std::vector<std::optional<Outcome>> outcome;
  std::vector<char> retired;
  double first_failure_ts = 0;  // monotonic_seconds of the first report
};

}  // namespace

ElasticResult run_elastic(const ElasticConfig& cfg,
                          const data::SceneDataset& corpus) {
  GEOFM_CHECK(cfg.world >= 1, "elastic world must be positive");
  GEOFM_CHECK(cfg.min_world >= 1 && cfg.min_world <= cfg.world,
              "elastic min_world out of range");
  GEOFM_CHECK(cfg.train.global_batch % cfg.world == 0,
              "global batch " << cfg.train.global_batch
                              << " not divisible by the initial world "
                              << cfg.world);
  GEOFM_CHECK(cfg.train.fault_injector == nullptr &&
                  cfg.train.resume_from.empty() && !cfg.train.recovery_resume,
              "run_elastic owns the train config's fault/resume fields; "
              "use ElasticConfig.faults / checkpoint_dir");
  for (const auto& e : cfg.faults.events) {
    GEOFM_CHECK(e.rank < cfg.world,
                "fault plan targets rank " << e.rank
                                           << " beyond the initial world");
  }

  obs::set_thread_label("elastic.supervisor");

  Shared sh;
  sh.work.resize(static_cast<size_t>(cfg.world));
  sh.outcome.resize(static_cast<size_t>(cfg.world));
  sh.retired.assign(static_cast<size_t>(cfg.world), 0);

  auto worker = [&](int identity) {
    for (;;) {
      std::optional<Assignment> a;
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        sh.cv.wait(lk, [&] {
          return sh.retired[static_cast<size_t>(identity)] ||
                 sh.work[static_cast<size_t>(identity)].has_value();
        });
        if (sh.retired[static_cast<size_t>(identity)]) return;
        a = std::move(sh.work[static_cast<size_t>(identity)]);
        sh.work[static_cast<size_t>(identity)].reset();
      }
      // The thread re-labels per attempt: its rank changes as the world
      // shrinks, while its identity (and fault targeting) stays fixed.
      set_thread_rank(a->comm.rank());
      obs::set_thread_label("rank");
      Outcome out;
      try {
        Rng rng(cfg.model_seed);
        models::MAE mae(cfg.model, rng);
        parallel::Fsdp fsdp(mae, a->comm, cfg.fsdp);
        out.result =
            pretrain_mae_distributed(mae, fsdp, a->comm, corpus, a->train);
        out.kind = Outcome::Kind::kCompleted;
      } catch (const comm::RankKilled& e) {
        out.kind = Outcome::Kind::kKilled;
        out.error = std::current_exception();
        out.what = e.what();
      } catch (const comm::Aborted& e) {
        out.kind = Outcome::Kind::kAborted;
        out.error = std::current_exception();
        out.what = e.what();
      } catch (const std::exception& e) {
        out.kind = Outcome::Kind::kFailed;
        out.error = std::current_exception();
        out.what = e.what();
      } catch (...) {
        out.kind = Outcome::Kind::kFailed;
        out.error = std::current_exception();
      }
      a.reset();  // drop the attempt's communicator before reporting
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        if (out.kind != Outcome::Kind::kCompleted &&
            sh.first_failure_ts == 0) {
          sh.first_failure_ts = monotonic_seconds();
        }
        sh.outcome[static_cast<size_t>(identity)] = std::move(out);
      }
      sh.cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.world));
  for (int id = 0; id < cfg.world; ++id) threads.emplace_back(worker, id);
  auto join_all = [&] {
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      std::fill(sh.retired.begin(), sh.retired.end(), 1);
    }
    sh.cv.notify_all();
    for (auto& t : threads) t.join();
  };

  auto& registry = obs::MetricsRegistry::instance();
  auto& rec_count = registry.counter("recovery.count");
  auto& rec_seconds = registry.counter("recovery.seconds");
  auto& rec_world = registry.gauge("recovery.world");

  ElasticResult res;
  std::vector<int> live(static_cast<size_t>(cfg.world));
  for (int id = 0; id < cfg.world; ++id) live[static_cast<size_t>(id)] = id;
  std::vector<comm::FaultEvent> remaining = cfg.faults.events;
  double pending_failure_ts = 0;  // consumed when the next attempt starts

  try {
    for (;;) {
      const int w = static_cast<int>(live.size());
      ElasticAttempt att;
      att.world = w;

      // ----- re-form: fresh group over survivors, watchdog re-armed ------
      std::shared_ptr<geofm::comm::detail::CommGroup> group;
      comm::FaultPlan attempt_plan;
      attempt_plan.seed = cfg.faults.seed;
      std::vector<comm::FaultEvent> attempt_events_by_identity;
      {
        std::optional<obs::TraceScope> reform;
        if (!res.attempts.empty()) {
          reform.emplace("recover.reform", "recover", "world", w);
        }
        group = comm::make_group(w);
        // Events still pending whose identity survived, remapped to this
        // attempt's ranks (identity live[r] is rank r).
        for (const comm::FaultEvent& e : remaining) {
          const auto it = std::find(live.begin(), live.end(), e.rank);
          if (it == live.end() && e.rank != -1) continue;
          comm::FaultEvent mapped = e;
          if (e.rank != -1) {
            mapped.rank = static_cast<int>(it - live.begin());
          }
          attempt_plan.events.push_back(std::move(mapped));
          attempt_events_by_identity.push_back(e);
        }
      }
      comm::Communicator probe(group, 0);  // supervisor handle: watchdog,
                                           // abort diagnosis (never posts)
      if (cfg.watchdog_deadline_seconds > 0) {
        comm::WatchdogOptions wopts;
        wopts.deadline_seconds = cfg.watchdog_deadline_seconds;
        probe.start_watchdog(wopts);
      }
      std::shared_ptr<comm::FaultInjector> injector;
      if (!attempt_plan.events.empty()) {
        injector = std::make_shared<comm::FaultInjector>(attempt_plan);
      }

      DistributedPretrainConfig tc = cfg.train;
      tc.fault_injector = injector;
      tc.watchdog_deadline_seconds = cfg.watchdog_deadline_seconds;
      tc.recovery_resume = !res.attempts.empty();
      if (!cfg.train.checkpoint_dir.empty() &&
          ckpt::latest_step(cfg.train.checkpoint_dir) >= 0) {
        // Pin the resume source now: later saves may add newer steps (or
        // retention may GC this one), and the attempt record must name
        // what was actually restored.
        att.resumed_from = ckpt::resolve_checkpoint(cfg.train.checkpoint_dir);
        tc.resume_from = att.resumed_from;
      }

      // ----- launch the attempt ------------------------------------------
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        sh.first_failure_ts = 0;
        for (int r = 0; r < w; ++r) {
          sh.outcome[static_cast<size_t>(live[static_cast<size_t>(r)])]
              .reset();
          sh.work[static_cast<size_t>(live[static_cast<size_t>(r)])] =
              Assignment{comm::Communicator(group, r), tc};
        }
      }
      sh.cv.notify_all();
      if (pending_failure_ts > 0) {
        const double s = monotonic_seconds() - pending_failure_ts;
        res.recovery_seconds += s;
        rec_seconds.add(s);
        pending_failure_ts = 0;
      }

      // ----- wait for every rank's outcome; time failure detection -------
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        std::optional<obs::TraceScope> detect;
        auto all_reported = [&] {
          return std::all_of(live.begin(), live.end(), [&](int id) {
            return sh.outcome[static_cast<size_t>(id)].has_value();
          });
        };
        while (!all_reported()) {
          sh.cv.wait(lk);
          if (!detect && sh.first_failure_ts > 0) {
            detect.emplace("recover.detect", "recover", "world", w);
          }
        }
        pending_failure_ts = sh.first_failure_ts;
      }

      if (injector) {
        const std::vector<bool> fired = injector->fired();
        std::vector<comm::FaultEvent> next;
        for (size_t i = 0; i < attempt_events_by_identity.size(); ++i) {
          if (i < fired.size() && fired[i]) {
            ++att.faults_fired;
          } else {
            next.push_back(attempt_events_by_identity[i]);
          }
        }
        remaining = std::move(next);
      }

      // ----- collect ------------------------------------------------------
      std::vector<int> dead;
      std::exception_ptr hard_failure;
      std::exception_ptr any_error;
      bool all_completed = true;
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        for (int id : live) {
          const Outcome& o = *sh.outcome[static_cast<size_t>(id)];
          if (o.kind != Outcome::Kind::kCompleted) {
            all_completed = false;
            if (att.failure.empty()) att.failure = o.what;
            if (!any_error) any_error = o.error;
          }
          if (o.kind == Outcome::Kind::kKilled) dead.push_back(id);
          if (o.kind == Outcome::Kind::kFailed && !hard_failure) {
            hard_failure = o.error;
          }
        }
        if (all_completed) {
          const Outcome& o0 = *sh.outcome[static_cast<size_t>(live[0])];
          att.completed = true;
          att.start_step = o0.result.start_step;
          att.losses = o0.result.step_losses;
          res.final_result = o0.result;
        }
      }
      if (all_completed) {
        res.final_identities = live;
        res.attempts.push_back(std::move(att));
        break;
      }
      if (hard_failure) {
        res.attempts.push_back(std::move(att));
        std::rethrow_exception(hard_failure);  // not a comm fault: fatal
      }
      for (int r : probe.abort_suspects()) {
        // Watchdog suspects are attempt ranks mapped to global identities
        // already (subgroup diagnoses map through global_ranks), and the
        // attempt group's global ranks are its own 0..w-1 — translate
        // through live[].
        if (r >= 0 && r < w) dead.push_back(live[static_cast<size_t>(r)]);
      }
      std::sort(dead.begin(), dead.end());
      dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
      if (dead.empty()) {
        // Aborted survivors but nobody diagnosably dead: nothing to
        // quarantine, so retrying would fail identically. Propagate.
        res.attempts.push_back(std::move(att));
        if (any_error) std::rethrow_exception(any_error);
        throw Error("elastic: attempt failed with no diagnosable fault");
      }

      // ----- quarantine + shrink -----------------------------------------
      att.quarantined = dead;
      std::vector<int> survivors;
      for (int id : live) {
        if (!std::binary_search(dead.begin(), dead.end(), id)) {
          survivors.push_back(id);
        }
      }
      while (!survivors.empty() &&
             cfg.train.global_batch %
                     static_cast<i64>(survivors.size()) != 0) {
        att.quarantined.push_back(survivors.back());
        survivors.pop_back();
      }
      if (cfg.train.verbose) {
        std::string q;
        for (int id : att.quarantined) {
          q += (q.empty() ? "" : ",") + std::to_string(id);
        }
        GEOFM_INFO("elastic: quarantining rank(s) "
                   << q << " after '" << att.failure << "'; re-forming at "
                   << "world " << survivors.size());
      }
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        for (int id : att.quarantined) {
          sh.retired[static_cast<size_t>(id)] = 1;
        }
      }
      sh.cv.notify_all();
      res.attempts.push_back(std::move(att));
      live = std::move(survivors);
      if (static_cast<int>(live.size()) < cfg.min_world) {
        throw Error("elastic: world shrank below min_world (" +
                    std::to_string(live.size()) + " < " +
                    std::to_string(cfg.min_world) + ")");
      }
      if (res.recoveries >= cfg.max_recoveries) {
        throw Error("elastic: exceeded max_recoveries (" +
                    std::to_string(cfg.max_recoveries) + ")");
      }
      ++res.recoveries;
      rec_count.add(1);
      rec_world.set(static_cast<double>(live.size()));
    }
  } catch (...) {
    join_all();
    throw;
  }
  join_all();
  return res;
}

}  // namespace geofm::train
