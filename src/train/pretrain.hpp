// MAE pretraining loop (paper Sec. V-B recipe): AdamW, base lr 1.5e-4
// scaled by global-batch/256, weight decay 0.05, cosine schedule with
// warmup, 75% masking, multi-worker data loading.
#pragma once

#include <vector>

#include "data/datasets.hpp"
#include "models/mae.hpp"

namespace geofm::train {

struct PretrainConfig {
  i64 epochs = 20;
  i64 batch_size = 64;
  double base_lr = 1.5e-4;     // paper value (per 256 effective batch)
  double weight_decay = 0.05;  // paper value
  double warmup_frac = 0.05;   // fraction of total steps spent warming up
  int loader_workers = 4;      // paper uses 4 per rank
  u64 seed = 0;
  bool verbose = false;
  /// Geometric augmentation (flips/rot90) during pretraining. Off by
  /// default to keep the benchmark checkpoints reproducible; turn on for
  /// data-starved corpora.
  bool augment = false;
};

struct PretrainResult {
  std::vector<float> step_losses;   // one per optimizer step
  std::vector<float> epoch_losses;  // mean loss per epoch
  double wall_seconds = 0.0;
  i64 images_seen = 0;
};

/// Pretrains `mae` in place on the (unlabeled) train split of `corpus`.
PretrainResult pretrain_mae(models::MAE& mae, const data::SceneDataset& corpus,
                            const PretrainConfig& cfg);

}  // namespace geofm::train
