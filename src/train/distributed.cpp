#include "train/distributed.hpp"

#include <algorithm>

#include "data/dataloader.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"
#include "util/log.hpp"
#include "util/thread_context.hpp"
#include "util/timer.hpp"

namespace geofm::train {

DistributedPretrainResult pretrain_mae_distributed(
    models::MAE& mae, parallel::Fsdp& fsdp, comm::Communicator& comm,
    const data::SceneDataset& corpus, const DistributedPretrainConfig& cfg) {
  GEOFM_CHECK(cfg.steps > 0 && cfg.global_batch > 0);
  GEOFM_CHECK(cfg.global_batch % comm.size() == 0,
              "global batch " << cfg.global_batch << " not divisible by "
                              << comm.size() << " ranks");
  const i64 local_batch = cfg.global_batch / comm.size();
  Timer timer;

  // Every rank renders the same global batch stream (same seed) and takes
  // its contiguous slice — the simplest SPMD pattern, and deterministic
  // regardless of rank count.
  data::DataLoader::Options lopts;
  lopts.batch_size = cfg.global_batch;
  lopts.n_workers = cfg.loader_workers;
  lopts.shuffle = true;
  lopts.seed = cfg.seed;
  data::DataLoader loader(corpus, data::Split::kTrain, lopts);
  GEOFM_CHECK(loader.batches_per_epoch() > 0,
              "corpus smaller than the global batch");

  optim::AdamW opt(fsdp.optimizer_parameters(), cfg.lr, 0.9, 0.95, 1e-8,
                   cfg.weight_decay);

  DistributedPretrainResult result;
  result.step_losses.reserve(static_cast<size_t>(cfg.steps));

  auto& registry = obs::MetricsRegistry::instance();
  auto& step_hist = registry.histogram("train.step_seconds");
  auto& loader_exposed_counter =
      registry.counter("train.loader_exposed_seconds");

  i64 step = 0;
  for (i64 epoch = 0; step < cfg.steps; ++epoch) {
    loader.start_epoch(epoch);
    for (;;) {
      // Fetch blocking time is the loader's exposed cost to this rank —
      // the input-pipeline analogue of CommStats::exposed_wait_seconds.
      double fetch_seconds = 0;
      std::optional<data::Batch> batch;
      {
        obs::TraceScope fetch_span("step.fetch", "loader", "step", step);
        const double t0 = monotonic_seconds();
        batch = loader.next();
        fetch_seconds = monotonic_seconds() - t0;
      }
      if (!batch || step >= cfg.steps) break;
      result.loader_exposed_seconds += fetch_seconds;
      loader_exposed_counter.add(fetch_seconds);

      obs::TraceScope step_span("step", "runtime", "step", step);
      const double step_t0 = monotonic_seconds();
      const i64 per = batch->images.numel() / batch->images.dim(0);
      Tensor mine({local_batch, batch->images.dim(1), batch->images.dim(2),
                   batch->images.dim(3)});
      {
        obs::TraceScope span("step.slice", "runtime", "local_batch",
                             local_batch);
        mine.copy_(batch->images.flat_view(comm.rank() * local_batch * per,
                                           local_batch * per));
      }

      // The async step: begin_step() issues what the strategy needs up
      // front; stage hooks overlap gathers/reductions with compute;
      // end_backward() drains every in-flight collective.
      fsdp.begin_step();
      Rng mask_rng(cfg.seed ^ (0x9e3779b9ULL + static_cast<u64>(step)));
      float local_loss = 0;
      {
        obs::TraceScope span("step.forward", "compute", "step", step);
        local_loss = mae.forward(mine, mask_rng, comm.rank() * local_batch);
      }
      {
        obs::TraceScope span("step.backward", "compute", "step", step);
        mae.backward();
      }
      {
        obs::TraceScope span("step.end_backward", "runtime", "step", step);
        fsdp.end_backward();
      }
      {
        obs::TraceScope span("step.optimizer", "optim", "step", step);
        opt.step();
      }

      const auto& stats = fsdp.last_step_stats();
      result.collectives_waited += stats.waits;
      result.collectives_overlapped += stats.completed_before_wait;
      result.comm_busy_seconds += stats.busy_seconds;
      result.exposed_wait_seconds += stats.exposed_wait_seconds;
      result.overlapped_comm_seconds += stats.overlapped_seconds();
      result.peak_inflight_gathers =
          std::max(result.peak_inflight_gathers, fsdp.peak_inflight_gathers());

      Tensor loss_t = Tensor::from({local_loss});
      {
        obs::TraceScope span("step.loss_allreduce", "comm", "step", step);
        comm.all_reduce(loss_t, comm::ReduceOp::kAvg);
      }
      result.step_losses.push_back(loss_t[0]);
      result.images_seen += cfg.global_batch;
      step_hist.observe(monotonic_seconds() - step_t0);
      if (cfg.verbose && comm.rank() == 0 && step % 10 == 0) {
        GEOFM_INFO("dist pretrain step " << step << " loss " << loss_t[0]
                                         << " exposed "
                                         << stats.exposed_wait_seconds
                                         << "s overlapped "
                                         << stats.overlapped_seconds()
                                         << "s loader " << fetch_seconds
                                         << "s");
      }
      ++step;
    }
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace geofm::train
