#include "train/distributed.hpp"

#include <algorithm>
#include <cstdlib>

#include "ckpt/checkpoint.hpp"
#include "ckpt/io_fault.hpp"
#include "ckpt/uploader.hpp"
#include "comm/watchdog.hpp"
#include "data/dataloader.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_context.hpp"
#include "util/timer.hpp"

namespace geofm::train {

DistributedPretrainResult pretrain_mae_distributed(
    models::MAE& mae, parallel::Fsdp& fsdp, comm::Communicator& comm,
    const data::SceneDataset& corpus, const DistributedPretrainConfig& cfg) {
  GEOFM_CHECK(cfg.steps > 0 && cfg.global_batch > 0);
  GEOFM_CHECK(cfg.global_batch % comm.size() == 0,
              "global batch " << cfg.global_batch << " not divisible by "
                              << comm.size() << " ranks");
  GEOFM_CHECK(cfg.checkpoint_every_n_steps == 0 ||
                  !cfg.checkpoint_dir.empty(),
              "checkpoint_every_n_steps needs a checkpoint_dir");
  const i64 local_batch = cfg.global_batch / comm.size();
  Timer timer;

  // Env-driven observability: GEOFM_TELEMETRY=dir starts the background
  // time-series sampler (first rank to get here wins; one per process).
  obs::telemetry::init_from_env();

  // Failure model: the injector sits under the communicator (so
  // post-triggered faults cover FSDP's sub-communicators too) and is
  // consulted at the mid-step fault point; the watchdog turns a stalled
  // rank into a diagnosed group abort instead of a deadlock. The
  // deprecated fault_hook rides the same path as a one-event callback
  // plan (not installed at the comm level — hooks are step-point only).
  if (cfg.fault_injector) {
    comm.install_fault_injector(cfg.fault_injector);
    // The same plan covers the storage path: checkpoint writes, restore
    // reads, and uploader copies consult the injector's IO events.
    ckpt::install_io_fault_injector(cfg.fault_injector);
  }
  if (cfg.watchdog_deadline_seconds > 0) {
    comm::WatchdogOptions wopts;
    wopts.deadline_seconds = cfg.watchdog_deadline_seconds;
    comm.start_watchdog(wopts);
  }
  std::shared_ptr<comm::FaultInjector> legacy_hook;
  if (cfg.fault_hook) {
    comm::FaultPlan shim;
    shim.events.push_back(comm::FaultEvent::callback_every_step(cfg.fault_hook));
    legacy_hook = std::make_shared<comm::FaultInjector>(std::move(shim));
  }

  // Every rank shares one global batch stream (same seed, same shuffle)
  // and its loader renders only this rank's contiguous slice of it —
  // SPMD-deterministic regardless of rank count, with per-rank render
  // work cut by the world size (per-sample rendering and per-sample-keyed
  // augmentation make the slice bitwise equal to the same rows of the
  // full batch).
  data::DataLoader::Options lopts;
  lopts.batch_size = cfg.global_batch;
  lopts.n_workers = cfg.loader_workers;
  lopts.shuffle = true;
  lopts.seed = cfg.seed;
  lopts.slice_offset = comm.rank() * local_batch;
  lopts.slice_count = local_batch;
  // Data-path fault seam: loader-kind events in the plan flow into the
  // loader (worker death, slow render, poisoned samples), with the
  // consumer watchdog + quarantine turned on so the run degrades instead
  // of dying. Ordinal-keyed triggers keep the schedule bitwise across
  // re-renders.
  if (cfg.fault_injector && cfg.fault_injector->has_loader_events()) {
    lopts.fault_injector = cfg.fault_injector.get();
    lopts.quarantine_poisoned = true;
    lopts.watchdog_seconds = cfg.loader_watchdog_seconds;
  }
  data::DataLoader loader(corpus, data::Split::kTrain, lopts);
  const i64 batches_per_epoch = loader.batches_per_epoch();
  GEOFM_CHECK(batches_per_epoch > 0, "corpus smaller than the global batch");

  optim::AdamW opt(fsdp.optimizer_parameters(), cfg.lr, 0.9, 0.95, 1e-8,
                   cfg.weight_decay);

  // The masking stream is persistent run state (not derived per step), so
  // a restored run continues the exact sequence an uninterrupted run
  // would draw.
  Rng mask_stream = Rng(cfg.seed).split(hash_name("mask_stream"));

  i64 start_step = 0;
  bool epoch_primed = false;  // loader already started on the resume epoch
  if (!cfg.resume_from.empty()) {
    // An elastic shrink-and-continue restart is the same reshard-restore
    // path, surfaced under the recover.* span family for time-to-recover
    // accounting. The span's arg records that the first post-resume data
    // fetch was kicked off inside it (loader/restore overlap).
    const bool overlap_fetch = cfg.loader_workers > 0;
    obs::TraceScope span(
        cfg.recovery_resume ? "recover.reshard" : "ckpt.resume",
        cfg.recovery_resume ? "recover" : "ckpt", "loader_overlap",
        overlap_fetch ? 1 : 0);
    // Opening the reader is a header/index scan only — cheap; shard
    // payloads load lazily during restore() below.
    ckpt::CheckpointReader reader(cfg.resume_from);
    // Checkpoints are taken after a step completes; resume at the next.
    start_step = reader.counter("step", -1) + 1;
    GEOFM_CHECK(start_step >= 1, "resumed checkpoint has no step counter");
    // Overlap the restore with the first post-resume fetch: the resumed
    // epoch's fast-forward + render pipeline spins up on the loader's
    // worker threads while this thread replays plan_reads below. The
    // loader touches no model state, so the two cannot interact.
    const i64 resume_epoch = start_step / batches_per_epoch;
    loader.start_epoch(resume_epoch,
                       start_step - resume_epoch * batches_per_epoch);
    epoch_primed = true;
    // Shards become the only authority before restored values land in
    // them; any previously gathered full parameters would be stale.
    fsdp.drop_full_parameters();
    reader.restore(ckpt::fsdp_state(fsdp, &opt));
    ckpt::restore_optimizer_scalars(reader, opt);
    mask_stream.set_state(reader.rng_state("mask_stream"));
    if (cfg.verbose && comm.rank() == 0) {
      GEOFM_INFO("resumed from " << reader.location() << " (saved at world "
                                 << reader.saved_world() << ", step "
                                 << start_step - 1 << ")");
    }
  }

  std::optional<ckpt::Checkpointer> checkpointer;
  if (cfg.checkpoint_every_n_steps > 0) {
    checkpointer.emplace(cfg.async_checkpoint);
    // A previous run that died mid-save must not leak partial shards
    // into this run's checkpoints.
    ckpt::reset_save_state(cfg.checkpoint_dir);
  }
  const bool uploads_configured =
      checkpointer.has_value() && cfg.upload.enabled();
  std::optional<ckpt::Uploader> uploader;
  if (uploads_configured && comm.rank() == 0) {
    ckpt::UploaderOptions uopts = cfg.upload;
    uopts.source = cfg.checkpoint_dir;
    uopts.owner_rank = comm.rank();
    uploader.emplace(uopts);
  }

  DistributedPretrainResult result;
  result.start_step = start_step;
  result.step_losses.reserve(
      static_cast<size_t>(std::max<i64>(cfg.steps - start_step, 0)));

  auto& registry = obs::MetricsRegistry::instance();
  auto& step_hist = registry.histogram("train.step_seconds");
  auto& loader_exposed_counter =
      registry.counter("train.loader_exposed_seconds");

  i64 step = start_step;
  for (i64 epoch = start_step / batches_per_epoch; step < cfg.steps;
       ++epoch) {
    // On the resumed epoch, fast-forward past the batches the previous
    // run already consumed (step k is batch k % bpe of epoch k / bpe) —
    // unless the resume path already primed the loader, overlapped with
    // the checkpoint restore.
    if (!epoch_primed) {
      loader.start_epoch(epoch, step - epoch * batches_per_epoch);
    }
    epoch_primed = false;
    for (;;) {
      // Fetch blocking time is the loader's exposed cost to this rank —
      // the input-pipeline analogue of CommStats::exposed_wait_seconds.
      double fetch_seconds = 0;
      std::optional<data::Batch> batch;
      {
        obs::TraceScope fetch_span("step.fetch", "loader", "step", step);
        const double t0 = monotonic_seconds();
        batch = loader.next();
        fetch_seconds = monotonic_seconds() - t0;
      }
      if (!batch || step >= cfg.steps) break;
      result.loader_exposed_seconds += fetch_seconds;
      loader_exposed_counter.add(fetch_seconds);

      obs::TraceScope step_span("step", "runtime", "step", step);
      const double step_t0 = monotonic_seconds();
      // The loader already rendered only this rank's slice of the global
      // batch (worker-side slicing), so the batch is used as-is.
      GEOFM_CHECK(batch->images.dim(0) == local_batch,
                  "loader slice is " << batch->images.dim(0)
                                     << " rows, expected " << local_batch);

      // The async step: begin_step() issues what the strategy needs up
      // front; stage hooks overlap gathers/reductions with compute;
      // end_backward() drains every in-flight collective.
      fsdp.begin_step();
      // One draw per step from the persistent stream seeds the step's
      // mask RNG; every rank draws identically, keeping masks SPMD.
      Rng mask_rng(mask_stream.next_u64());
      float local_loss = 0;
      {
        obs::TraceScope span("step.forward", "compute", "step", step);
        local_loss =
            mae.forward(batch->images, mask_rng, comm.rank() * local_batch);
      }
      {
        obs::TraceScope span("step.backward", "compute", "step", step);
        mae.backward();
      }
      {
        obs::TraceScope span("step.end_backward", "runtime", "step", step);
        fsdp.end_backward();
      }
      if (cfg.fault_injector) {
        cfg.fault_injector->at_step_point(comm, step);
      }
      if (legacy_hook) {
        legacy_hook->at_step_point(comm, step);
      }
      {
        obs::TraceScope span("step.optimizer", "optim", "step", step);
        opt.step();
      }
      if (checkpointer &&
          (step + 1) % cfg.checkpoint_every_n_steps == 0) {
        ckpt::SaveRequest req;
        req.dir = cfg.checkpoint_dir;
        req.step = step;
        req.rank = comm.rank();
        req.world = comm.size();
        req.state = ckpt::fsdp_state(fsdp, &opt);
        req.counters = {{"step", step},
                        {"epoch", epoch},
                        {"seed", static_cast<i64>(cfg.seed)}};
        for (const auto& [name, value] : ckpt::optimizer_scalars(opt)) {
          req.counters[name] = value;
        }
        // State *after* this step's draw, so a resumed run draws what
        // step + 1 would have.
        req.rng_streams = {{"mask_stream", mask_stream.state()}};
        req.retention.keep_last = cfg.checkpoint_keep_last;
        req.retention.keep_multiple_of = cfg.checkpoint_keep_multiple_of;
        req.tolerate_failures = cfg.tolerate_checkpoint_failures;
        checkpointer->save(req);
      }

      const auto& stats = fsdp.last_step_stats();
      result.collectives_waited += stats.waits;
      result.collectives_overlapped += stats.completed_before_wait;
      result.comm_busy_seconds += stats.busy_seconds;
      result.exposed_wait_seconds += stats.exposed_wait_seconds;
      result.overlapped_comm_seconds += stats.overlapped_seconds();
      result.peak_inflight_gathers =
          std::max(result.peak_inflight_gathers, fsdp.peak_inflight_gathers());

      Tensor loss_t = Tensor::from({local_loss});
      {
        obs::TraceScope span("step.loss_allreduce", "comm", "step", step);
        comm.all_reduce(loss_t, comm::ReduceOp::kAvg);
      }
      result.step_losses.push_back(loss_t[0]);
      result.images_seen += cfg.global_batch;
      step_hist.observe(monotonic_seconds() - step_t0);
      if (cfg.verbose && comm.rank() == 0 && step % 10 == 0) {
        GEOFM_INFO("dist pretrain step " << step << " loss " << loss_t[0]
                                         << " exposed "
                                         << stats.exposed_wait_seconds
                                         << "s overlapped "
                                         << stats.overlapped_seconds()
                                         << "s loader " << fetch_seconds
                                         << "s");
      }
      ++step;
    }
  }
  // The run's last checkpoint must be durable (and any write failure
  // reported) before the driver returns.
  if (checkpointer) checkpointer->wait_idle();
  if (uploads_configured) {
    // Publication happens on whichever rank's shard lands last, so rank
    // 0 can only trust the queue after every rank's writer drained. The
    // condition is config-derived — symmetric across ranks.
    comm.barrier();
    if (uploader) {
      uploader->drain();
      const ckpt::UploaderStats ustats = uploader->stats();
      result.checkpoints_uploaded = ustats.uploaded;
      result.upload_failures = ustats.failures;
      result.upload_gave_up = ustats.gave_up;
      if (ustats.gave_up > 0) {
        GEOFM_WARN("run finished with " << ustats.gave_up
                                        << " checkpoint(s) never uploaded");
      }
    }
  }
  result.wall_seconds = timer.seconds();
  // GEOFM_HEALTH=path: rank 0 writes the cross-rank run-health report
  // (JSON). Peers may still be finishing their last step when rank 0
  // exits, so the report covers everything published by this point — the
  // elastic supervisor's run_health.json (written after all ranks join)
  // is the complete-run variant.
  if (comm.rank() == 0) {
    if (const char* path = std::getenv("GEOFM_HEALTH")) {
      if (path[0] != '\0') {
        try {
          write_file(path, obs::report_to_json(obs::build_run_health_report()));
        } catch (const std::exception& e) {
          GEOFM_WARN("GEOFM_HEALTH report failed: " << e.what());
        }
      }
    }
  }
  return result;
}

}  // namespace geofm::train
