// Optimizers. All operate elementwise on Parameter{value, grad} pairs, so
// they work identically on ordinary module parameters and on FSDP flat
// shards (which is exactly how sharded optimizer state works in ZeRO/FSDP:
// each rank steps only its own shard).
//
// Weight decay is applied uniformly to all parameters (no norm/bias
// filtering) so that sharded and unsharded training are bitwise-comparable.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace geofm::optim {

/// A checkpointable view of an optimizer's internal state. Slot tensors
/// alias the live optimizer buffers (reads and writes go through), so the
/// checkpoint subsystem can save and restore moments in place without
/// copies; scalar entries point at live counters (e.g. AdamW's step
/// count). Slot names are stable across runs and optimizer instances.
struct OptimizerStateView {
  struct Slot {
    nn::Parameter* param = nullptr;  // the managed parameter this belongs to
    const char* slot = nullptr;      // e.g. "exp_avg" (string literal)
    Tensor tensor;                   // same numel as param->value
  };
  struct Scalar {
    const char* name = nullptr;  // e.g. "step" (string literal)
    i64* value = nullptr;        // live counter; restore writes through
  };
  std::vector<Slot> slots;
  std::vector<Scalar> scalars;
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter*> params, double lr);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// The optimizer's checkpointable state (empty for stateless
  /// optimizers). See OptimizerStateView.
  virtual OptimizerStateView state_view() { return {}; }

  /// Zeroes gradients of all managed parameters.
  void zero_grad();

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

  /// Bytes of optimizer state per parameter element (used by the memory
  /// model; e.g. AdamW = 8: two fp32 moments).
  virtual i64 state_bytes_per_element() const = 0;

 protected:
  std::vector<nn::Parameter*> params_;
  double lr_;
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<nn::Parameter*> params, double lr, double momentum = 0.0);
  void step() override;
  OptimizerStateView state_view() override;
  i64 state_bytes_per_element() const override {
    return momentum_ != 0.0 ? 4 : 0;
  }

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// AdamW (decoupled weight decay) — the paper's pretraining optimizer
/// (base lr 1.5e-4, weight decay 0.05).
class AdamW final : public Optimizer {
 public:
  AdamW(std::vector<nn::Parameter*> params, double lr, double beta1 = 0.9,
        double beta2 = 0.95, double eps = 1e-8, double weight_decay = 0.05);
  void step() override;
  OptimizerStateView state_view() override;
  i64 state_bytes_per_element() const override { return 8; }

  i64 step_count() const { return t_; }

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  i64 t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// LARS (You et al.) — the paper's linear-probing optimizer (base lr 0.1,
/// no weight decay). Layer-wise trust ratio ||w||/||g|| with momentum.
class Lars final : public Optimizer {
 public:
  Lars(std::vector<nn::Parameter*> params, double lr, double momentum = 0.9,
       double weight_decay = 0.0, double trust_coefficient = 0.001);
  void step() override;
  OptimizerStateView state_view() override;
  i64 state_bytes_per_element() const override { return 4; }

 private:
  double momentum_, weight_decay_, trust_;
  std::vector<Tensor> velocity_;
};

/// Cosine decay with linear warmup, the MAE schedule. Returns the lr for
/// `step` in [0, total_steps).
double cosine_warmup_lr(double base_lr, i64 step, i64 warmup_steps,
                        i64 total_steps, double min_lr = 0.0);

}  // namespace geofm::optim
