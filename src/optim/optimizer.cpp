#include "optim/optimizer.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "tensor/kernels/kernels.hpp"

namespace geofm::optim {

Optimizer::Optimizer(std::vector<nn::Parameter*> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  for (nn::Parameter* p : params_) {
    GEOFM_CHECK(p != nullptr && p->value.defined(), "null parameter");
  }
}

void Optimizer::zero_grad() {
  for (nn::Parameter* p : params_) {
    p->ensure_grad();
    p->grad.zero_();
  }
}

// ----- SGD -------------------------------------------------------------------

Sgd::Sgd(std::vector<nn::Parameter*> params, double lr, double momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (nn::Parameter* p : params_) {
      velocity_.push_back(Tensor::zeros(p->value.shape()));
    }
  }
}

void Sgd::step() {
  obs::TraceScope span("optim.step.sgd", "optim");
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter* p = params_[i];
    if (!p->requires_grad || !p->grad.defined()) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    const float lr = static_cast<float>(lr_);
    if (momentum_ == 0.0) {
      for (i64 j = 0; j < p->numel(); ++j) w[j] -= lr * g[j];
    } else {
      float* v = velocity_[i].data();
      const float mu = static_cast<float>(momentum_);
      for (i64 j = 0; j < p->numel(); ++j) {
        v[j] = mu * v[j] + g[j];
        w[j] -= lr * v[j];
      }
    }
  }
}

OptimizerStateView Sgd::state_view() {
  OptimizerStateView view;
  for (size_t i = 0; i < velocity_.size(); ++i) {
    view.slots.push_back({params_[i], "velocity", velocity_[i]});
  }
  return view;
}

// ----- AdamW -------------------------------------------------------------------

AdamW::AdamW(std::vector<nn::Parameter*> params, double lr, double beta1,
             double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (nn::Parameter* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void AdamW::step() {
  obs::TraceScope span("optim.step.adamw", "optim");
  ++t_;
  kernels::AdamWConfig cfg;
  cfg.lr = lr_;
  cfg.beta1 = beta1_;
  cfg.beta2 = beta2_;
  cfg.eps = eps_;
  cfg.weight_decay = weight_decay_;
  cfg.bias_c1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  cfg.bias_c2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter* p = params_[i];
    if (!p->requires_grad || !p->grad.defined()) continue;
    kernels::adamw_update(p->numel(), p->value.data(), p->grad.data(),
                          m_[i].data(), v_[i].data(), cfg);
  }
}

OptimizerStateView AdamW::state_view() {
  OptimizerStateView view;
  for (size_t i = 0; i < params_.size(); ++i) {
    view.slots.push_back({params_[i], "exp_avg", m_[i]});
    view.slots.push_back({params_[i], "exp_avg_sq", v_[i]});
  }
  view.scalars.push_back({"step", &t_});
  return view;
}

// ----- LARS -------------------------------------------------------------------

Lars::Lars(std::vector<nn::Parameter*> params, double lr, double momentum,
           double weight_decay, double trust_coefficient)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay),
      trust_(trust_coefficient) {
  velocity_.reserve(params_.size());
  for (nn::Parameter* p : params_) {
    velocity_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Lars::step() {
  obs::TraceScope span("optim.step.lars", "optim");
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter* p = params_[i];
    if (!p->requires_grad || !p->grad.defined()) continue;
    const double w_norm = p->value.norm();
    double g_norm = p->grad.norm();

    // Effective gradient includes L2 term.
    // local lr = trust * ||w|| / (||g|| + wd * ||w||); 1 when degenerate.
    double local_lr = 1.0;
    if (w_norm > 0.0 && g_norm > 0.0) {
      local_lr = trust_ * w_norm / (g_norm + weight_decay_ * w_norm + 1e-12);
    }
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* v = velocity_[i].data();
    const float mu = static_cast<float>(momentum_);
    const float scaled = static_cast<float>(lr_ * local_lr);
    const float wd = static_cast<float>(weight_decay_);
    for (i64 j = 0; j < p->numel(); ++j) {
      const float eff_g = g[j] + wd * w[j];
      v[j] = mu * v[j] + scaled * eff_g;
      w[j] -= v[j];
    }
  }
}

OptimizerStateView Lars::state_view() {
  OptimizerStateView view;
  for (size_t i = 0; i < velocity_.size(); ++i) {
    view.slots.push_back({params_[i], "velocity", velocity_[i]});
  }
  return view;
}

double cosine_warmup_lr(double base_lr, i64 step, i64 warmup_steps,
                        i64 total_steps, double min_lr) {
  GEOFM_CHECK(total_steps > 0 && step >= 0);
  if (warmup_steps > 0 && step < warmup_steps) {
    return base_lr * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps);
  }
  const double denom =
      std::max<double>(1.0, static_cast<double>(total_steps - warmup_steps));
  const double progress = static_cast<double>(step - warmup_steps) / denom;
  const double cos_factor =
      0.5 * (1.0 + std::cos(3.141592653589793 * std::min(progress, 1.0)));
  return min_lr + (base_lr - min_lr) * cos_factor;
}

}  // namespace geofm::optim
