#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/thread_context.hpp"

namespace geofm {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("GEOFM_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  // Monotonic timestamp (same clock anchor the trace recorder uses, so log
  // lines correlate with trace spans) and the emitting thread's rank when
  // it runs inside a collective rank thread.
  char rank_buf[16] = "";
  const int rank = this_thread_rank();
  if (rank >= 0) std::snprintf(rank_buf, sizeof(rank_buf), " r%d", rank);
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  std::fprintf(stderr, "[geofm +%.6fs%s %s] %s\n", monotonic_seconds(),
               rank_buf, level_name(level), msg.c_str());
}

}  // namespace detail
}  // namespace geofm
