#include "util/common.hpp"

namespace geofm::detail {

void check_failed(const char* file, int line, const char* cond,
                  const std::string& msg) {
  std::ostringstream oss;
  oss << "GEOFM_CHECK failed at " << file << ":" << line << ": " << cond;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace geofm::detail
