#include "util/backoff.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace geofm {

double backoff_seconds(const BackoffPolicy& policy, u64 key, int attempt) {
  GEOFM_CHECK(attempt >= 1, "backoff attempts are 1-based");
  double backoff = policy.initial_seconds;
  for (int i = 1; i < attempt; ++i) backoff *= 2;
  backoff = std::min(backoff, policy.max_seconds);
  Rng jitter =
      Rng(policy.seed).split(key).split(static_cast<u64>(attempt));
  backoff *= jitter.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  return backoff;
}

}  // namespace geofm
