#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace geofm {

ThreadPool::ThreadPool(int n_workers) {
  GEOFM_CHECK(n_workers >= 0);
  threads_.reserve(static_cast<size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_chunks(Task& task) {
  for (;;) {
    const i64 begin = task.next_index.fetch_add(task.chunk);
    if (begin >= task.n) break;
    const i64 end = std::min<i64>(begin + task.chunk, task.n);
    (*task.fn)(begin, end);
  }
}

void ThreadPool::worker_loop() {
  u64 seen = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = current_;
    }
    if (task == nullptr) continue;
    try {
      run_chunks(*task);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (task->remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(i64 n, const std::function<void(i64, i64)>& fn,
                              i64 grain) {
  GEOFM_CHECK(grain >= 0, "parallel_for grain must be non-negative");
  if (n <= 0) return;
  const int workers = n_workers();
  // Single-chunk bypass: loops at or below the grain (or the legacy 512
  // threshold when no grain is given) never pay dispatch or fan-out cost.
  if (workers == 0 || (grain > 0 ? n <= grain : n < 512)) {
    fn(0, n);
    return;
  }

  // Only one parallel region may own the pool at a time. Concurrent or
  // nested callers (e.g. several communicator rank threads computing at
  // once) degrade gracefully to inline execution — the ranks themselves
  // already provide the parallelism in that case.
  std::unique_lock<std::mutex> dispatch(dispatch_mu_, std::try_to_lock);
  if (!dispatch.owns_lock()) {
    fn(0, n);
    return;
  }

  Task task;
  task.fn = &fn;
  task.n = n;
  // Aim for ~4 chunks per participant for dynamic balance without
  // excessive atomics traffic, but never carve chunks below the grain.
  task.chunk = std::max<i64>(std::max<i64>(1, grain),
                             n / (static_cast<i64>(workers + 1) * 4));
  task.remaining.store(workers);

  {
    std::lock_guard<std::mutex> lk(mu_);
    first_error_ = nullptr;
    current_ = &task;
    ++generation_;
  }
  cv_start_.notify_all();

  // The caller participates instead of idling.
  std::exception_ptr caller_error;
  try {
    run_chunks(task);
  } catch (...) {
    caller_error = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return task.remaining.load() == 0; });
    current_ = nullptr;
    if (caller_error) std::rethrow_exception(caller_error);
    if (first_error_) std::rethrow_exception(first_error_);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("GEOFM_NUM_THREADS")) {
      return std::max(0, std::atoi(env) - 1);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<int>(hw - 1) : 0;
  }());
  return pool;
}

void parallel_for(i64 n, const std::function<void(i64, i64)>& fn, i64 grain) {
  ThreadPool::global().parallel_for(n, fn, grain);
}

}  // namespace geofm
