#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace geofm {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

std::string fmt_tick(double v) {
  char buf[32];
  if (std::fabs(v) >= 1e5 || (std::fabs(v) < 1e-2 && v != 0)) {
    std::snprintf(buf, sizeof(buf), "%.1e", v);
  } else if (std::fabs(v - std::llround(v)) < 1e-9) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(std::llround(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

AsciiChart::AsciiChart(Options options) : options_(options) {
  GEOFM_CHECK(options_.width >= 16 && options_.height >= 4,
              "chart too small");
}

void AsciiChart::add_series(std::string name, std::vector<double> x,
                            std::vector<double> y) {
  GEOFM_CHECK(x.size() == y.size() && !x.empty(),
              "series needs equal-length non-empty x/y");
  for (size_t i = 0; i < x.size(); ++i) {
    if (options_.log_x) GEOFM_CHECK(x[i] > 0, "log-x requires positive x");
    if (options_.log_y) GEOFM_CHECK(y[i] > 0, "log-y requires positive y");
  }
  Series s;
  s.name = std::move(name);
  s.x = std::move(x);
  s.y = std::move(y);
  s.glyph = kGlyphs[series_.size() % sizeof(kGlyphs)];
  series_.push_back(std::move(s));
}

double AsciiChart::tx(double x) const {
  return options_.log_x ? std::log2(x) : x;
}

double AsciiChart::ty(double y) const {
  return options_.log_y ? std::log2(y) : y;
}

std::string AsciiChart::render() const {
  GEOFM_CHECK(!series_.empty(), "nothing to plot");
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (const auto& s : series_) {
    for (size_t i = 0; i < s.x.size(); ++i) {
      xmin = std::min(xmin, tx(s.x[i]));
      xmax = std::max(xmax, tx(s.x[i]));
      ymin = std::min(ymin, ty(s.y[i]));
      ymax = std::max(ymax, ty(s.y[i]));
    }
  }
  if (xmax - xmin < 1e-12) xmax = xmin + 1;
  if (ymax - ymin < 1e-12) ymax = ymin + 1;

  const int w = options_.width, h = options_.height;
  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), ' '));
  for (const auto& s : series_) {
    for (size_t i = 0; i < s.x.size(); ++i) {
      const int col = static_cast<int>(std::lround(
          (tx(s.x[i]) - xmin) / (xmax - xmin) * (w - 1)));
      const int row = static_cast<int>(std::lround(
          (ty(s.y[i]) - ymin) / (ymax - ymin) * (h - 1)));
      auto& cell = grid[static_cast<size_t>(h - 1 - row)]
                       [static_cast<size_t>(col)];
      // First writer wins; overlaps become '?'.
      cell = (cell == ' ' || cell == s.glyph) ? s.glyph : '?';
    }
  }

  std::ostringstream oss;
  if (!options_.y_label.empty()) {
    oss << options_.y_label;
    if (options_.log_y) oss << " (log)";
    oss << '\n';
  }
  const std::string ytop = fmt_tick(options_.log_y ? std::exp2(ymax) : ymax);
  const std::string ybot = fmt_tick(options_.log_y ? std::exp2(ymin) : ymin);
  const size_t margin = std::max(ytop.size(), ybot.size());
  for (int r = 0; r < h; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = ytop + std::string(margin - ytop.size(), ' ');
    if (r == h - 1) label = ybot + std::string(margin - ybot.size(), ' ');
    oss << label << " |" << grid[static_cast<size_t>(r)] << '\n';
  }
  oss << std::string(margin + 1, ' ') << '+'
      << std::string(static_cast<size_t>(w), '-') << '\n';
  const std::string xlo = fmt_tick(options_.log_x ? std::exp2(xmin) : xmin);
  const std::string xhi = fmt_tick(options_.log_x ? std::exp2(xmax) : xmax);
  oss << std::string(margin + 2, ' ') << xlo
      << std::string(
             std::max<size_t>(1, static_cast<size_t>(w) - xlo.size() -
                                     xhi.size()),
             ' ')
      << xhi;
  if (!options_.x_label.empty()) {
    oss << "   " << options_.x_label;
    if (options_.log_x) oss << " (log)";
  }
  oss << '\n';

  oss << "legend:";
  for (const auto& s : series_) oss << "  " << s.glyph << " = " << s.name;
  oss << '\n';
  return oss.str();
}

void AsciiChart::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace geofm
