// ASCII line charts for the benchmark harness: the paper's figures are
// log-log weak-scaling plots, and a rendered chart makes shape checks
// (crossovers, flattening) legible directly in terminal output.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace geofm {

/// Multi-series scatter/line chart rendered to text. Series are plotted
/// with distinct glyphs; axes can be linear or log2/log10.
class AsciiChart {
 public:
  struct Options {
    int width = 72;    // plot area columns
    int height = 20;   // plot area rows
    bool log_x = false;
    bool log_y = false;
    std::string x_label;
    std::string y_label;
  };

  explicit AsciiChart(Options options);

  /// Adds a named series; x and y must be equal length, positive when the
  /// corresponding axis is logarithmic.
  void add_series(std::string name, std::vector<double> x,
                  std::vector<double> y);

  [[nodiscard]] std::string render() const;
  void print() const;

 private:
  struct Series {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
    char glyph;
  };

  double tx(double x) const;  // axis transforms
  double ty(double y) const;

  Options options_;
  std::vector<Series> series_;
};

}  // namespace geofm
