// ASCII table and CSV emission used by the benchmark harness to print the
// paper's tables and figure series in a stable, diffable format.
#pragma once

#include <string>
#include <vector>

namespace geofm {

/// Column-aligned plain-text table. Build row by row, then `to_string()`
/// or `print()`. All cells are strings; use the `fmt_*` helpers below for
/// consistent numeric formatting.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string to_string() const;
  void print() const;

  /// Serializes as CSV (header + rows), for EXPERIMENTS.md ingestion.
  [[nodiscard]] std::string to_csv() const;

  std::size_t n_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float, e.g. fmt_f(3.14159, 2) == "3.14".
std::string fmt_f(double v, int precision = 2);
/// Integer with no grouping.
std::string fmt_i(long long v);
/// Human-readable byte count (e.g. "61.4 GB").
std::string fmt_bytes(double bytes);

/// Writes `content` to `path`, creating parent directories as needed.
void write_file(const std::string& path, const std::string& content);

}  // namespace geofm
