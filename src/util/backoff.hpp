// Shared exponential-backoff shape with deterministic seeded jitter.
//
// Two subsystems retry against flaky storage: the checkpoint uploader
// (mirror copies) and the serving tier's reload circuit breaker. Both
// need the same schedule — exponential growth clamped to a ceiling,
// scaled by jitter that is a pure function of (seed, key, attempt) so
// fault-injected runs replay bitwise and a fleet of servers pointed at
// the same torn publication does not retry in lockstep. This header is
// that one shape; the policy fields mirror the uploader's original
// knobs so its observable schedule is unchanged.
#pragma once

#include "util/common.hpp"

namespace geofm {

struct BackoffPolicy {
  double initial_seconds = 0.05;  // attempt 1 waits this long (pre-jitter)
  double max_seconds = 2.0;       // exponential growth clamps here
  double jitter = 0.5;            // scale by [1-j, 1+j) per attempt
  u64 seed = 0x5eedULL;           // jitter stream
};

/// Backoff before retry `attempt` (1-based: attempt 1 is the first
/// retry) of the work item identified by `key` (the uploader keys by
/// checkpoint step; the serve breaker by trip count). Deterministic:
/// initial * 2^(attempt-1), clamped to max, jittered by a stream split
/// from (seed, key, attempt).
double backoff_seconds(const BackoffPolicy& policy, u64 key, int attempt);

}  // namespace geofm
