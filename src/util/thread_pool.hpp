// A persistent worker pool with a blocking parallel_for, in the OpenMP
// "parallel for" idiom: the caller thread participates, work is split into
// contiguous index ranges, and the call returns only when every range is
// done. Used by the tensor kernels; the communicator layer has its own
// dedicated rank threads and does not go through this pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace geofm {

class ThreadPool {
 public:
  /// Creates `n_workers` persistent threads. n_workers == 0 means run
  /// everything inline on the caller (useful for debugging).
  explicit ThreadPool(int n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int n_workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(begin, end) over disjoint subranges of [0, n) across the pool
  /// plus the calling thread; blocks until all subranges complete.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  ///
  /// `grain` is a minimum chunk size hint: no dispatched subrange is
  /// smaller than `grain` indices (except the final remainder), and when
  /// n <= grain the whole range runs inline on the caller — the
  /// single-chunk bypass — without touching the dispatch lock, so small
  /// kernels don't pay fan-out overhead. grain == 0 keeps the legacy
  /// heuristic (inline below 512 indices, ~4 chunks per participant).
  void parallel_for(i64 n, const std::function<void(i64, i64)>& fn,
                    i64 grain = 0);

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(i64, i64)>* fn = nullptr;
    i64 n = 0;
    i64 chunk = 0;
    std::atomic<i64> next_index{0};
    std::atomic<int> remaining{0};
  };

  void worker_loop();
  static void run_chunks(Task& task);

  std::vector<std::thread> threads_;
  std::mutex dispatch_mu_;  // serializes parallel regions; busy => inline
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task* current_ = nullptr;
  u64 generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Convenience wrapper over the global pool. `grain` as in
/// ThreadPool::parallel_for: minimum chunk size, n <= grain runs inline.
void parallel_for(i64 n, const std::function<void(i64, i64)>& fn,
                  i64 grain = 0);

}  // namespace geofm
