#include "util/thread_context.hpp"

#include <chrono>

namespace geofm {
namespace {

thread_local int t_rank = -1;

std::chrono::steady_clock::time_point process_origin() {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

// Force the anchor to initialize at static-init time so early threads and
// late threads measure from (almost) the same origin.
const auto g_anchor = process_origin();

}  // namespace

void set_thread_rank(int rank) { t_rank = rank; }

int this_thread_rank() { return t_rank; }

u64 monotonic_ns() {
  (void)g_anchor;
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() -
                              process_origin())
                              .count());
}

double monotonic_seconds() { return static_cast<double>(monotonic_ns()) * 1e-9; }

}  // namespace geofm
