// Deterministic, splittable random number generation.
//
// geofm needs reproducible streams per (seed, rank, purpose) so that
// multi-rank runs are bitwise repeatable and independent of thread
// scheduling. Rng is a counter-based generator in the spirit of Philox:
// cheap to construct, cheap to split, no shared state.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/common.hpp"

namespace geofm {

/// Mixes 64-bit input to a well-distributed 64-bit output (splitmix64
/// finalizer). Used both as a standalone hash and as the Rng core.
constexpr u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Counter-based deterministic RNG. Streams derived via `split` are
/// statistically independent for distinct keys.
class Rng {
 public:
  explicit Rng(u64 seed = 0x5eedULL) : state_(mix64(seed + 0x1234)) {}

  /// Derives an independent stream, e.g. rng.split(rank) or
  /// rng.split(hash_of("weights")).
  [[nodiscard]] Rng split(u64 key) const {
    Rng out(0);
    out.state_ = mix64(state_ ^ mix64(key + 0xabcdef));
    return out;
  }

  /// Next 64 uniformly distributed bits.
  u64 next_u64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  i64 uniform_int(i64 n) {
    GEOFM_CHECK(n > 0, "uniform_int requires positive bound");
    return static_cast<i64>(next_u64() % static_cast<u64>(n));
  }

  /// Standard normal via Box–Muller (one draw per call; the pair's second
  /// member is discarded to keep the generator stateless across calls).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Raw generator state, for checkpoint/restart: a stream restored with
  /// set_state(state()) continues the exact same sequence.
  u64 state() const { return state_; }
  void set_state(u64 state) { state_ = state; }

 private:
  u64 state_;
};

/// FNV-1a hash of a string, for deriving Rng stream keys from names.
constexpr u64 hash_name(const char* s) {
  u64 h = 1469598103934665603ULL;
  while (*s != '\0') {
    h ^= static_cast<u64>(static_cast<unsigned char>(*s++));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace geofm
