// Common support macros and small helpers shared across geofm.
//
// Error handling policy (per C++ Core Guidelines E.12/E.13): programming
// errors and violated invariants abort with a diagnostic; recoverable
// conditions throw geofm::Error.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace geofm {

/// Exception type for recoverable errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* file, int line, const char* cond,
                               const std::string& msg);

}  // namespace detail

/// Index type used for tensor shapes and loop bounds.
using i64 = std::int64_t;
using u64 = std::uint64_t;
using u32 = std::uint32_t;

}  // namespace geofm

/// GEOFM_CHECK(cond) / GEOFM_CHECK(cond, msg...) — always-on invariant check.
/// Aborts via geofm::Error with file/line context when `cond` is false.
#define GEOFM_CHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream geofm_check_oss_;                                  \
      geofm_check_oss_ << "" __VA_ARGS__;                                   \
      ::geofm::detail::check_failed(__FILE__, __LINE__, #cond,              \
                                    geofm_check_oss_.str());                \
    }                                                                       \
  } while (0)
