// Per-thread identity shared by the logger, the trace recorder, and the
// collective runtime: which logical rank a thread is acting as, and a
// human-readable label for its track in trace exports. `run_ranks` tags
// each rank thread; the DataLoader tags its workers with the rank of the
// thread that owns the loader, so a rank's loader activity groups under
// that rank's timeline.
//
// Also home of the process-wide monotonic clock anchor, so log lines and
// trace timestamps share one time base and correlate directly.
#pragma once

#include "util/common.hpp"

namespace geofm {

/// Tags the calling thread as logical rank `rank` (-1 = untracked).
void set_thread_rank(int rank);
/// The calling thread's logical rank, or -1 if it was never tagged.
int this_thread_rank();

/// Nanoseconds on the steady clock since the process-wide anchor (first
/// use). Shared by log timestamps and trace events.
u64 monotonic_ns();
/// Same anchor, in seconds.
double monotonic_seconds();

}  // namespace geofm
