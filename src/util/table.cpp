#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/common.hpp"

namespace geofm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GEOFM_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  GEOFM_CHECK(cells.size() == header_.size(), "row arity " << cells.size()
                                              << " != header arity "
                                              << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    oss << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
          << " |";
    }
    oss << '\n';
  };
  auto emit_sep = [&] {
    oss << "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      oss << std::string(width[c] + 2, '-') << '+';
    }
    oss << '\n';
  };

  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return oss.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) oss << ',';
    oss << escape(header_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << ',';
      oss << escape(row[c]);
    }
    oss << '\n';
  }
  return oss.str();
}

std::string fmt_f(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_i(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt_f(bytes, 1) + " " + units[u];
}

void write_file(const std::string& path, const std::string& content) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(p);
  GEOFM_CHECK(out.good(), "cannot open " << path);
  out << content;
}

}  // namespace geofm
