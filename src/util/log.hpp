// Minimal leveled logger. Thread-safe; writes to stderr. Level is taken
// from GEOFM_LOG (trace|debug|info|warn|error), default info. Each line
// carries a monotonic timestamp (same clock anchor as the trace recorder,
// so logs correlate with GEOFM_TRACE timelines) and the emitting thread's
// rank id when inside a collective rank thread:
//   [geofm +1.234567s r2 INFO] message
#pragma once

#include <sstream>
#include <string>

namespace geofm {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Current global level (initialized once from the environment).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace geofm

#define GEOFM_LOG_AT(level, ...)                            \
  do {                                                      \
    if (static_cast<int>(level) >=                          \
        static_cast<int>(::geofm::log_level())) {           \
      std::ostringstream geofm_log_oss_;                    \
      geofm_log_oss_ << __VA_ARGS__;                        \
      ::geofm::detail::log_emit(level, geofm_log_oss_.str()); \
    }                                                       \
  } while (0)

#define GEOFM_TRACE(...) GEOFM_LOG_AT(::geofm::LogLevel::kTrace, __VA_ARGS__)
#define GEOFM_DEBUG(...) GEOFM_LOG_AT(::geofm::LogLevel::kDebug, __VA_ARGS__)
#define GEOFM_INFO(...) GEOFM_LOG_AT(::geofm::LogLevel::kInfo, __VA_ARGS__)
#define GEOFM_WARN(...) GEOFM_LOG_AT(::geofm::LogLevel::kWarn, __VA_ARGS__)
#define GEOFM_ERROR(...) GEOFM_LOG_AT(::geofm::LogLevel::kError, __VA_ARGS__)
