// Multi-worker prefetching data loader, in the PyTorch DataLoader idiom
// the paper uses (4 workers per rank): worker threads render/decode
// batches ahead of the training loop into a bounded reorder buffer, and
// the consumer receives batches in a deterministic order regardless of
// worker scheduling.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "data/datasets.hpp"
#include "data/transforms.hpp"

namespace geofm::data {

struct Batch {
  Tensor images;             // [B, C, H, W]
  std::vector<i64> labels;   // size B
  i64 index = 0;             // batch ordinal within the epoch
  std::vector<i64> sample_indices;  // dataset indices composing the batch
};

class DataLoader {
 public:
  struct Options {
    i64 batch_size = 32;
    int n_workers = 4;       // 0 = synchronous rendering in next()
    bool shuffle = true;
    bool drop_last = true;
    i64 prefetch_batches = 4;  // bound on rendered-but-unconsumed batches
    u64 seed = 0;
    /// Per-sample augmentation (training only). Deterministic given
    /// (seed, epoch, dataset index) regardless of worker scheduling.
    bool enable_augment = false;
    AugmentOptions augment;
    /// Worker-side batch slicing (distributed SPMD): when slice_count >=
    /// 0, only rows [slice_offset, slice_offset + slice_count) of every
    /// global batch are rendered and returned, clipped to the batch.
    /// Sample identity, shuffling, and augmentation draws are unchanged
    /// (each sample renders independently, keyed by dataset index), so a
    /// slice is bitwise identical to the same rows of the full batch —
    /// but each rank's loader does only its share of the render work
    /// instead of the whole world's.
    i64 slice_offset = 0;
    i64 slice_count = -1;  // -1 = the whole batch
  };

  DataLoader(const SceneDataset& dataset, Split split, Options options);
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  i64 batches_per_epoch() const;

  /// Begins (or restarts) an epoch: builds the index permutation from
  /// (seed, epoch) and spins up workers. Must be called before next().
  /// `first_batch` fast-forwards mid-epoch (checkpoint resume): batches
  /// before it are neither rendered nor returned, and the first next()
  /// yields batch `first_batch` exactly as an un-resumed epoch would.
  void start_epoch(i64 epoch, i64 first_batch = 0);

  /// Next batch of the running epoch, in order; nullopt once exhausted.
  std::optional<Batch> next();

 private:
  void worker_loop();
  Batch render_batch(i64 batch_index) const;
  Batch render_batch_traced(i64 batch_index) const;
  void stop_workers();

  const SceneDataset& dataset_;
  Split split_;
  Options options_;
  // Rank of the thread that built the loader: workers adopt it so their
  // trace activity groups under the owning rank's timeline.
  int owner_rank_ = -1;

  std::vector<i64> permutation_;
  i64 n_batches_ = 0;
  i64 epoch_ = 0;

  // Epoch state shared with workers.
  std::mutex mu_;
  std::condition_variable cv_produce_;
  std::condition_variable cv_consume_;
  std::map<i64, Batch> ready_;
  i64 next_to_claim_ = 0;
  i64 next_to_consume_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace geofm::data
