// Multi-worker prefetching data loader, in the PyTorch DataLoader idiom
// the paper uses (4 workers per rank): worker threads render/decode
// batches ahead of the training loop into a bounded reorder buffer, and
// the consumer receives batches in a deterministic order regardless of
// worker scheduling.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "data/datasets.hpp"
#include "data/transforms.hpp"

namespace geofm::comm {
class FaultInjector;
}

namespace geofm::data {

struct Batch {
  Tensor images;             // [B, C, H, W]
  std::vector<i64> labels;   // size B
  i64 index = 0;             // batch ordinal within the epoch
  std::vector<i64> sample_indices;  // dataset indices composing the batch
};

class DataLoader {
 public:
  struct Options {
    i64 batch_size = 32;
    int n_workers = 4;       // 0 = synchronous rendering in next()
    bool shuffle = true;
    bool drop_last = true;
    i64 prefetch_batches = 4;  // bound on rendered-but-unconsumed batches
    u64 seed = 0;
    /// Per-sample augmentation (training only). Deterministic given
    /// (seed, epoch, dataset index) regardless of worker scheduling.
    bool enable_augment = false;
    AugmentOptions augment;
    /// Worker-side batch slicing (distributed SPMD): when slice_count >=
    /// 0, only rows [slice_offset, slice_offset + slice_count) of every
    /// global batch are rendered and returned, clipped to the batch.
    /// Sample identity, shuffling, and augmentation draws are unchanged
    /// (each sample renders independently, keyed by dataset index), so a
    /// slice is bitwise identical to the same rows of the full batch —
    /// but each rank's loader does only its share of the render work
    /// instead of the whole world's.
    i64 slice_offset = 0;
    i64 slice_count = -1;  // -1 = the whole batch
    /// Data-path fault seam (chaos campaigns): when set, every batch
    /// render first consults `fault_injector->before_render(rank,
    /// ordinal)` with the *global* batch ordinal (epoch *
    /// batches_per_epoch + batch index). Injected worker deaths requeue
    /// the claimed batch and respawn a replacement thread (bounded by
    /// `max_worker_respawns` per epoch); injected render delays are
    /// absorbed by the watchdog below; injected poison renders one
    /// sample row non-finite.
    comm::FaultInjector* fault_injector = nullptr;
    /// Consumer-side stall watchdog: if next() has waited longer than
    /// this for the wanted batch (a hung or killed-without-respawn
    /// worker), the consumer renders the batch itself and any late
    /// duplicate render is discarded — renders are bitwise
    /// deterministic, so either copy is the same batch. 0 disables.
    double watchdog_seconds = 0;
    int max_worker_respawns = 4;  // replacement threads per epoch
    /// Poisoned-sample quarantine: scan each rendered sample row for
    /// non-finite values; offending rows are zeroed (the batch survives)
    /// and their dataset indices recorded — a bad shard degrades
    /// throughput instead of killing the run. Off by default: the scan
    /// touches every pixel, so enable it only under chaos campaigns or
    /// untrusted data.
    bool quarantine_poisoned = false;
  };

  DataLoader(const SceneDataset& dataset, Split split, Options options);
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  i64 batches_per_epoch() const;

  /// Begins (or restarts) an epoch: builds the index permutation from
  /// (seed, epoch) and spins up workers. Must be called before next().
  /// `first_batch` fast-forwards mid-epoch (checkpoint resume): batches
  /// before it are neither rendered nor returned, and the first next()
  /// yields batch `first_batch` exactly as an un-resumed epoch would.
  void start_epoch(i64 epoch, i64 first_batch = 0);

  /// Next batch of the running epoch, in order; nullopt once exhausted.
  std::optional<Batch> next();

  /// Dataset indices quarantined so far (sorted; persists across epochs).
  std::vector<i64> quarantined_samples() const;

 private:
  void worker_loop();
  Batch render_batch(i64 batch_index) const;
  Batch render_batch_traced(i64 batch_index) const;
  /// render_batch_traced plus the fault seam's side effects: applies an
  /// injected poison to one sample row, then (when quarantine is on)
  /// scans rows for non-finite values, zeroing and recording offenders.
  Batch render_faulted(i64 batch_index, bool apply_poison, u64 poison_site);
  void stop_workers();

  const SceneDataset& dataset_;
  Split split_;
  Options options_;
  // Rank of the thread that built the loader: workers adopt it so their
  // trace activity groups under the owning rank's timeline.
  int owner_rank_ = -1;

  std::vector<i64> permutation_;
  i64 n_batches_ = 0;
  i64 epoch_ = 0;

  // Epoch state shared with workers.
  std::mutex mu_;
  std::condition_variable cv_produce_;
  std::condition_variable cv_consume_;
  std::map<i64, Batch> ready_;
  i64 next_to_claim_ = 0;
  i64 next_to_consume_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Fault-seam state (all under mu_ except quarantined_, which has its
  // own lock so workers can record offenders mid-render).
  std::deque<i64> requeued_;   // batches orphaned by a worker death
  int alive_workers_ = 0;
  int respawns_used_ = 0;
  mutable std::mutex quarantine_mu_;
  std::set<i64> quarantined_;  // dataset indices, persistent across epochs
};

}  // namespace geofm::data
