// Multi-worker prefetching data loader, in the PyTorch DataLoader idiom
// the paper uses (4 workers per rank): worker threads render/decode
// batches ahead of the training loop into a bounded reorder buffer, and
// the consumer receives batches in a deterministic order regardless of
// worker scheduling.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "data/datasets.hpp"
#include "data/transforms.hpp"

namespace geofm::data {

struct Batch {
  Tensor images;             // [B, C, H, W]
  std::vector<i64> labels;   // size B
  i64 index = 0;             // batch ordinal within the epoch
  std::vector<i64> sample_indices;  // dataset indices composing the batch
};

class DataLoader {
 public:
  struct Options {
    i64 batch_size = 32;
    int n_workers = 4;       // 0 = synchronous rendering in next()
    bool shuffle = true;
    bool drop_last = true;
    i64 prefetch_batches = 4;  // bound on rendered-but-unconsumed batches
    u64 seed = 0;
    /// Per-sample augmentation (training only). Deterministic given
    /// (seed, epoch, dataset index) regardless of worker scheduling.
    bool enable_augment = false;
    AugmentOptions augment;
  };

  DataLoader(const SceneDataset& dataset, Split split, Options options);
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  i64 batches_per_epoch() const;

  /// Begins (or restarts) an epoch: builds the index permutation from
  /// (seed, epoch) and spins up workers. Must be called before next().
  void start_epoch(i64 epoch);

  /// Next batch of the running epoch, in order; nullopt once exhausted.
  std::optional<Batch> next();

 private:
  void worker_loop();
  Batch render_batch(i64 batch_index) const;
  Batch render_batch_traced(i64 batch_index) const;
  void stop_workers();

  const SceneDataset& dataset_;
  Split split_;
  Options options_;
  // Rank of the thread that built the loader: workers adopt it so their
  // trace activity groups under the owning rank's timeline.
  int owner_rank_ = -1;

  std::vector<i64> permutation_;
  i64 n_batches_ = 0;
  i64 epoch_ = 0;

  // Epoch state shared with workers.
  std::mutex mu_;
  std::condition_variable cv_produce_;
  std::condition_variable cv_consume_;
  std::map<i64, Batch> ready_;
  i64 next_to_claim_ = 0;
  i64 next_to_consume_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace geofm::data
