#include "data/dataloader.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "comm/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_context.hpp"

namespace geofm::data {

DataLoader::DataLoader(const SceneDataset& dataset, Split split,
                       Options options)
    : dataset_(dataset),
      split_(split),
      options_(options),
      owner_rank_(this_thread_rank()) {
  GEOFM_CHECK(options_.batch_size > 0);
  GEOFM_CHECK(options_.n_workers >= 0);
  GEOFM_CHECK(options_.prefetch_batches >= 1);
  GEOFM_CHECK(options_.slice_offset >= 0 &&
                  (options_.slice_count < 0 ||
                   options_.slice_offset + options_.slice_count <=
                       options_.batch_size),
              "batch slice [" << options_.slice_offset << ", +"
                              << options_.slice_count
                              << ") exceeds batch size "
                              << options_.batch_size);
  GEOFM_CHECK(dataset_.size(split_) >= options_.batch_size ||
                  !options_.drop_last,
              "dataset smaller than one batch");
}

DataLoader::~DataLoader() { stop_workers(); }

i64 DataLoader::batches_per_epoch() const {
  const i64 n = dataset_.size(split_);
  return options_.drop_last ? n / options_.batch_size
                            : (n + options_.batch_size - 1) /
                                  options_.batch_size;
}

void DataLoader::start_epoch(i64 epoch, i64 first_batch) {
  GEOFM_CHECK(first_batch >= 0 && first_batch <= batches_per_epoch(),
              "first_batch " << first_batch << " out of range");
  stop_workers();

  const i64 n = dataset_.size(split_);
  permutation_.resize(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) permutation_[static_cast<size_t>(i)] = i;
  if (options_.shuffle) {
    // Fisher–Yates keyed by (seed, epoch): every epoch a fresh, fully
    // reproducible order.
    Rng rng = Rng(options_.seed).split(0x10adULL).split(static_cast<u64>(epoch));
    for (i64 i = n - 1; i > 0; --i) {
      const i64 j = rng.uniform_int(i + 1);
      std::swap(permutation_[static_cast<size_t>(i)],
                permutation_[static_cast<size_t>(j)]);
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    epoch_ = epoch;
    n_batches_ = batches_per_epoch();
    ready_.clear();
    // Resume fast-forward: skipped batches are never claimed, so no
    // render work is wasted on them.
    next_to_claim_ = first_batch;
    next_to_consume_ = first_batch;
    stopping_ = false;
    requeued_.clear();
    alive_workers_ = options_.n_workers;
    respawns_used_ = 0;
  }

  for (int w = 0; w < options_.n_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Batch DataLoader::render_batch(i64 batch_index) const {
  const i64 begin = batch_index * options_.batch_size;
  const i64 end = std::min<i64>(begin + options_.batch_size,
                                dataset_.size(split_));
  i64 lo = begin;
  i64 hi = end;
  if (options_.slice_count >= 0) {
    lo = std::min<i64>(begin + options_.slice_offset, end);
    hi = std::min<i64>(lo + options_.slice_count, end);
  }
  std::vector<i64> indices(permutation_.begin() + lo,
                           permutation_.begin() + hi);
  auto [images, labels] = dataset_.make_batch(split_, indices);
  if (options_.enable_augment) {
    const i64 per = images.numel() / images.dim(0);
    for (size_t i = 0; i < indices.size(); ++i) {
      Tensor view = images.flat_view(static_cast<i64>(i) * per, per)
                        .view({dataset_.channels(), dataset_.img_size(),
                               dataset_.img_size()});
      Rng rng = Rng(options_.seed)
                    .split(0xa06ULL)
                    .split(static_cast<u64>(epoch_))
                    .split(static_cast<u64>(indices[i]));
      view.copy_(augment(view, options_.augment, rng));
    }
  }
  Batch batch;
  batch.images = std::move(images);
  batch.labels = std::move(labels);
  batch.index = batch_index;
  batch.sample_indices = std::move(indices);
  return batch;
}

Batch DataLoader::render_batch_traced(i64 batch_index) const {
  obs::TraceScope span("loader.render", "loader", "batch", batch_index,
                       "samples", options_.batch_size);
  const double t0 = monotonic_seconds();
  Batch batch = render_batch(batch_index);
  static auto& render_hist =
      obs::MetricsRegistry::instance().histogram("loader.render_seconds");
  static auto& rendered =
      obs::MetricsRegistry::instance().counter("loader.batches_rendered");
  static auto& samples =
      obs::MetricsRegistry::instance().counter("loader.samples_rendered");
  render_hist.observe(monotonic_seconds() - t0);
  rendered.add(1);
  samples.add(static_cast<double>(batch.sample_indices.size()));
  return batch;
}

Batch DataLoader::render_faulted(i64 batch_index, bool apply_poison,
                                 u64 poison_site) {
  Batch batch = render_batch_traced(batch_index);
  const i64 rows = static_cast<i64>(batch.sample_indices.size());
  const i64 per = rows > 0 ? batch.images.numel() / rows : 0;
  if (apply_poison && rows > 0 && per > 0) {
    float* row = batch.images.data() +
                 static_cast<i64>(poison_site % static_cast<u64>(rows)) * per;
    for (i64 k = 0; k < per; ++k) {
      row[k] = std::numeric_limits<float>::quiet_NaN();
    }
  }
  if (options_.quarantine_poisoned && rows > 0 && per > 0) {
    static auto& quarantined =
        obs::MetricsRegistry::instance().counter("loader.quarantined");
    for (i64 r = 0; r < rows; ++r) {
      float* row = batch.images.data() + r * per;
      bool bad = false;
      for (i64 k = 0; k < per; ++k) {
        if (!std::isfinite(row[k])) {
          bad = true;
          break;
        }
      }
      if (!bad) continue;
      // Zero the sample rather than dropping it: batch geometry (and so
      // every downstream shape) is unchanged, and the zeroed row is
      // deterministic, so replay stays bitwise.
      std::fill(row, row + per, 0.f);
      bool newly = false;
      {
        std::lock_guard<std::mutex> lk(quarantine_mu_);
        newly = quarantined_.insert(batch.sample_indices[r]).second;
      }
      if (newly) quarantined.add(1);
      obs::trace_instant("loader.quarantine", "loader");
    }
  }
  return batch;
}

void DataLoader::worker_loop() {
  set_thread_rank(owner_rank_);
  obs::set_thread_label("loader.worker");
  for (;;) {
    i64 mine = -1;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_produce_.wait(lk, [&] {
        return stopping_ || !requeued_.empty() ||
               (next_to_claim_ < n_batches_ &&
                next_to_claim_ - next_to_consume_ <
                    options_.prefetch_batches);
      });
      if (stopping_) {
        --alive_workers_;
        cv_consume_.notify_all();
        return;
      }
      while (!requeued_.empty() && mine < 0) {
        // Orphans of a dead worker come first; entries the consumer
        // already rendered itself are stale — drop them.
        const i64 head = requeued_.front();
        requeued_.pop_front();
        if (head >= next_to_consume_ && ready_.count(head) == 0) mine = head;
      }
      if (mine < 0) {
        if (next_to_claim_ >= n_batches_) {
          --alive_workers_;
          cv_consume_.notify_all();
          return;
        }
        mine = next_to_claim_++;
      }
    }
    // Fault seam: consult the installed injector on the *global* batch
    // ordinal before rendering. An injected slow-render sleeps inside
    // before_render (that is the hang the consumer watchdog catches).
    bool poison = false;
    u64 poison_site = 0;
    if (options_.fault_injector != nullptr) {
      const i64 ordinal = epoch_ * n_batches_ + mine;
      auto fault = options_.fault_injector->before_render(
          owner_rank_ < 0 ? 0 : owner_rank_, ordinal);
      poison = fault.poison;
      poison_site = fault.poison_site;
      if (fault.kill_worker) {
        static auto& deaths =
            obs::MetricsRegistry::instance().counter("loader.worker_deaths");
        static auto& respawns =
            obs::MetricsRegistry::instance().counter("loader.respawns");
        deaths.add(1);
        obs::trace_instant("loader.worker_death", "loader");
        {
          std::lock_guard<std::mutex> lk(mu_);
          requeued_.push_back(mine);
          --alive_workers_;
          if (!stopping_ && respawns_used_ < options_.max_worker_respawns) {
            ++respawns_used_;
            ++alive_workers_;
            workers_.emplace_back([this] { worker_loop(); });
            respawns.add(1);
          }
        }
        cv_produce_.notify_all();
        cv_consume_.notify_all();
        return;  // this worker thread is dead
      }
    }
    Batch batch = render_faulted(mine, poison, poison_site);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (mine >= next_to_consume_ && ready_.count(mine) == 0) {
        ready_.emplace(mine, std::move(batch));
      } else {
        // A watchdog takeover beat us to it; renders are deterministic,
        // so the duplicate is bitwise identical and safe to drop.
        static auto& discarded =
            obs::MetricsRegistry::instance().counter(
                "loader.discarded_renders");
        discarded.add(1);
      }
    }
    cv_consume_.notify_all();
  }
}

std::optional<Batch> DataLoader::next() {
  if (options_.n_workers == 0) {
    if (next_to_consume_ >= batches_per_epoch()) return std::nullopt;
    GEOFM_CHECK(!permutation_.empty(), "next() before start_epoch()");
    // Synchronous path: the whole render happens on the consumer's
    // critical path, so it is all exposed time. The fault seam still
    // applies (an injected worker kill is meaningless here and ignored).
    const double t0 = monotonic_seconds();
    const i64 mine = next_to_consume_++;
    bool poison = false;
    u64 poison_site = 0;
    if (options_.fault_injector != nullptr) {
      const i64 ordinal = epoch_ * batches_per_epoch() + mine;
      auto fault = options_.fault_injector->before_render(
          owner_rank_ < 0 ? 0 : owner_rank_, ordinal);
      poison = fault.poison;
      poison_site = fault.poison_site;
    }
    Batch batch = render_faulted(mine, poison, poison_site);
    static auto& exposed_sync =
        obs::MetricsRegistry::instance().counter("loader.exposed_wait_seconds");
    exposed_sync.add(monotonic_seconds() - t0);
    return batch;
  }

  std::unique_lock<std::mutex> lk(mu_);
  GEOFM_CHECK(!permutation_.empty(), "next() before start_epoch()");
  if (next_to_consume_ >= n_batches_) return std::nullopt;
  const i64 want = next_to_consume_;
  if (ready_.count(want) == 0) {
    // Consumer outran the prefetchers: this wait is loader-exposed time,
    // the analogue of CommStats::exposed_wait_seconds for input.
    obs::TraceScope span("loader.wait", "loader", "batch", want);
    const double t0 = monotonic_seconds();
    static auto& exposed =
        obs::MetricsRegistry::instance().counter("loader.exposed_wait_seconds");
    static auto& stall_requeues =
        obs::MetricsRegistry::instance().counter("loader.stall_requeues");
    const double wd = options_.watchdog_seconds;
    while (ready_.count(want) == 0) {
      const bool workers_gone = alive_workers_ == 0;
      const bool overdue = wd > 0 && monotonic_seconds() - t0 > wd;
      if (workers_gone || overdue) {
        // Nobody is coming (every worker dead, respawn budget spent) or
        // the render is overdue (a hung worker): take the batch over on
        // the consumer. Renders are bitwise deterministic, so a late
        // duplicate from the original worker is discarded harmlessly.
        // The takeover render skips the fault seam — whatever fault
        // delayed or killed the original render already fired.
        if (overdue && !workers_gone) {
          stall_requeues.add(1);
          obs::trace_instant("loader.stall_takeover", "loader");
        }
        for (auto it = requeued_.begin(); it != requeued_.end(); ++it) {
          if (*it == want) {
            requeued_.erase(it);
            break;
          }
        }
        lk.unlock();
        Batch rescued = render_faulted(want, false, 0);
        lk.lock();
        if (ready_.count(want) == 0) {
          ready_.emplace(want, std::move(rescued));
        } else {
          static auto& discarded =
              obs::MetricsRegistry::instance().counter(
                  "loader.discarded_renders");
          discarded.add(1);
        }
        break;
      }
      if (wd > 0) {
        cv_consume_.wait_for(
            lk, std::chrono::duration<double>(std::max(wd / 4, 1e-3)));
      } else {
        cv_consume_.wait(lk, [&] {
          return ready_.count(want) > 0 || alive_workers_ == 0;
        });
      }
    }
    exposed.add(monotonic_seconds() - t0);
  }
  Batch batch = std::move(ready_.at(want));
  ready_.erase(want);
  ++next_to_consume_;
  lk.unlock();
  cv_produce_.notify_all();  // a prefetch slot opened up
  return batch;
}

std::vector<i64> DataLoader::quarantined_samples() const {
  std::lock_guard<std::mutex> lk(quarantine_mu_);
  return std::vector<i64>(quarantined_.begin(), quarantined_.end());
}

void DataLoader::stop_workers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_produce_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

}  // namespace geofm::data
