#include "data/dataloader.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace geofm::data {

DataLoader::DataLoader(const SceneDataset& dataset, Split split,
                       Options options)
    : dataset_(dataset), split_(split), options_(options) {
  GEOFM_CHECK(options_.batch_size > 0);
  GEOFM_CHECK(options_.n_workers >= 0);
  GEOFM_CHECK(options_.prefetch_batches >= 1);
  GEOFM_CHECK(dataset_.size(split_) >= options_.batch_size ||
                  !options_.drop_last,
              "dataset smaller than one batch");
}

DataLoader::~DataLoader() { stop_workers(); }

i64 DataLoader::batches_per_epoch() const {
  const i64 n = dataset_.size(split_);
  return options_.drop_last ? n / options_.batch_size
                            : (n + options_.batch_size - 1) /
                                  options_.batch_size;
}

void DataLoader::start_epoch(i64 epoch) {
  stop_workers();

  const i64 n = dataset_.size(split_);
  permutation_.resize(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) permutation_[static_cast<size_t>(i)] = i;
  if (options_.shuffle) {
    // Fisher–Yates keyed by (seed, epoch): every epoch a fresh, fully
    // reproducible order.
    Rng rng = Rng(options_.seed).split(0x10adULL).split(static_cast<u64>(epoch));
    for (i64 i = n - 1; i > 0; --i) {
      const i64 j = rng.uniform_int(i + 1);
      std::swap(permutation_[static_cast<size_t>(i)],
                permutation_[static_cast<size_t>(j)]);
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    epoch_ = epoch;
    n_batches_ = batches_per_epoch();
    ready_.clear();
    next_to_claim_ = 0;
    next_to_consume_ = 0;
    stopping_ = false;
  }

  for (int w = 0; w < options_.n_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Batch DataLoader::render_batch(i64 batch_index) const {
  const i64 begin = batch_index * options_.batch_size;
  const i64 end = std::min<i64>(begin + options_.batch_size,
                                dataset_.size(split_));
  std::vector<i64> indices(permutation_.begin() + begin,
                           permutation_.begin() + end);
  auto [images, labels] = dataset_.make_batch(split_, indices);
  if (options_.enable_augment) {
    const i64 per = images.numel() / images.dim(0);
    for (size_t i = 0; i < indices.size(); ++i) {
      Tensor view = images.flat_view(static_cast<i64>(i) * per, per)
                        .view({dataset_.channels(), dataset_.img_size(),
                               dataset_.img_size()});
      Rng rng = Rng(options_.seed)
                    .split(0xa06ULL)
                    .split(static_cast<u64>(epoch_))
                    .split(static_cast<u64>(indices[i]));
      view.copy_(augment(view, options_.augment, rng));
    }
  }
  Batch batch;
  batch.images = std::move(images);
  batch.labels = std::move(labels);
  batch.index = batch_index;
  batch.sample_indices = std::move(indices);
  return batch;
}

void DataLoader::worker_loop() {
  for (;;) {
    i64 mine = -1;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_produce_.wait(lk, [&] {
        return stopping_ || (next_to_claim_ < n_batches_ &&
                             next_to_claim_ - next_to_consume_ <
                                 options_.prefetch_batches);
      });
      if (stopping_ || next_to_claim_ >= n_batches_) return;
      mine = next_to_claim_++;
    }
    Batch batch = render_batch(mine);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.emplace(mine, std::move(batch));
    }
    cv_consume_.notify_all();
  }
}

std::optional<Batch> DataLoader::next() {
  if (options_.n_workers == 0) {
    if (next_to_consume_ >= batches_per_epoch()) return std::nullopt;
    GEOFM_CHECK(!permutation_.empty(), "next() before start_epoch()");
    return render_batch(next_to_consume_++);
  }

  std::unique_lock<std::mutex> lk(mu_);
  GEOFM_CHECK(!permutation_.empty(), "next() before start_epoch()");
  if (next_to_consume_ >= n_batches_) return std::nullopt;
  const i64 want = next_to_consume_;
  cv_consume_.wait(lk, [&] { return ready_.count(want) > 0; });
  Batch batch = std::move(ready_.at(want));
  ready_.erase(want);
  ++next_to_consume_;
  lk.unlock();
  cv_produce_.notify_all();  // a prefetch slot opened up
  return batch;
}

void DataLoader::stop_workers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_produce_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

}  // namespace geofm::data
