// Procedural remote-sensing scene generator — the stand-in for MillionAID
// / UCM / AID / NWPU imagery (which require downloads we cannot perform).
//
// Each class is a deterministic bundle of layout + palette + texture
// parameters derived from the class id; each sample adds jitter (phase,
// orientation, noise, illumination) derived from its sample key. Classes
// are built from six structural families reminiscent of aerial land-use
// categories (field stripes, urban grids, forest blobs, water gradients,
// industrial checkers, radial/airport patterns), so that recognizing a
// class requires texture/layout features — the kind a pretrained encoder
// should supply and a linear probe on raw pixels largely cannot.
#pragma once

#include "tensor/tensor.hpp"

namespace geofm::data {

class SceneGenerator {
 public:
  /// `seed` namespaces the whole generator (different datasets draw
  /// different class parameter bundles).
  SceneGenerator(i64 img_size, i64 channels, int n_classes, u64 seed);

  /// Renders one [C, H, W] image of `class_id` (values roughly in [-1, 2],
  /// already sensor-normalized). `sample_key` selects the sample's jitter;
  /// the same (class_id, sample_key) always renders the same image.
  Tensor render(int class_id, u64 sample_key) const;

  i64 img_size() const { return img_; }
  i64 channels() const { return channels_; }
  int n_classes() const { return n_classes_; }

 private:
  struct ClassParams {
    int family;          // structural family, 0..5
    int family2;         // secondary (fine-scale) structural family
    double freq;         // base spatial frequency
    double freq2;        // secondary frequency (finer)
    double orientation;  // radians
    double orientation2;
    double mix;          // primary/secondary blend
    double phase2_x;     // class-locked fine-texture phases
    double phase2_y;
    double contrast;
    double palette[3][3];  // per-channel base/accent/shadow colors
    double warp;           // domain warping strength
  };

  ClassParams class_params(int class_id) const;

  i64 img_;
  i64 channels_;
  int n_classes_;
  u64 seed_;
};

}  // namespace geofm::data
