// Dataset facades matching the paper's Table II, backed by the procedural
// scene generator. Sizes, class counts, and train/test splits follow the
// paper exactly; image resolution defaults to the proxy scale (32x32) so
// functional experiments fit on CPU (the paper pretrained at 512x512).
#pragma once

#include <string>
#include <vector>

#include "data/scene_generator.hpp"

namespace geofm::data {

enum class Split { kTrain, kTest };

struct Sample {
  Tensor image;  // [C, H, W]
  i64 label;
};

class SceneDataset {
 public:
  SceneDataset(std::string name, int n_classes, i64 n_train, i64 n_test,
               i64 img_size, u64 seed);

  const std::string& name() const { return name_; }
  int n_classes() const { return gen_.n_classes(); }
  i64 img_size() const { return gen_.img_size(); }
  i64 channels() const { return gen_.channels(); }
  i64 size(Split split) const {
    return split == Split::kTrain ? n_train_ : n_test_;
  }

  /// Deterministic sample access; labels are balanced round-robin.
  Sample get(Split split, i64 index) const;
  i64 label_of(Split split, i64 index) const;

  /// Stacks the given indices into one [B, C, H, W] batch (+labels).
  std::pair<Tensor, std::vector<i64>> make_batch(
      Split split, const std::vector<i64>& indices) const;

 private:
  std::string name_;
  i64 n_train_;
  i64 n_test_;
  SceneGenerator gen_;
};

/// Scale divides every split size (>=1); used to shrink the largest test
/// sets for fast benchmark runs without changing class balance.
struct DatasetScale {
  i64 divisor = 1;
};

// ----- Table II facades ------------------------------------------------------

/// MillionAID pretraining corpus stand-in. The paper uses 990 848 images;
/// `n_images` selects the proxy corpus size (samples are i.i.d. scenes
/// across all 51 MillionAID-like classes; labels unused by MAE).
SceneDataset million_aid_pretrain(i64 n_images, i64 img_size = 32);

/// MillionAID classification split: 1000 train / 9000 test, 51 classes.
SceneDataset million_aid(i64 img_size = 32, DatasetScale scale = {});
/// UC Merced: 1050 / 1050, 21 classes (TR = 50%).
SceneDataset ucm(i64 img_size = 32, DatasetScale scale = {});
/// AID: 2000 / 8000, 30 classes (TR = 20%).
SceneDataset aid(i64 img_size = 32, DatasetScale scale = {});
/// NWPU-RESISC45: 3150 / 28350, 45 classes (TR = 10%).
SceneDataset nwpu(i64 img_size = 32, DatasetScale scale = {});

/// The four classification datasets of Table II, in paper order
/// (UCM, AID, NWPU, MillionAID as presented in Table III).
std::vector<SceneDataset> table2_classification_datasets(
    i64 img_size = 32, DatasetScale scale = {});

}  // namespace geofm::data
