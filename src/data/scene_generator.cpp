#include "data/scene_generator.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace geofm::data {
namespace {

constexpr double kTau = 6.283185307179586;

// Cheap value noise: hash lattice points, bilinear interpolation.
double value_noise(double x, double y, u64 seed) {
  const auto lattice = [&](i64 ix, i64 iy) {
    const u64 h = mix64(seed ^ (static_cast<u64>(ix) * 0x9e3779b9ULL) ^
                        (static_cast<u64>(iy) * 0x85ebca6bULL));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  };
  const i64 ix = static_cast<i64>(std::floor(x));
  const i64 iy = static_cast<i64>(std::floor(y));
  const double fx = x - static_cast<double>(ix);
  const double fy = y - static_cast<double>(iy);
  const double sx = fx * fx * (3 - 2 * fx);
  const double sy = fy * fy * (3 - 2 * fy);
  const double a = lattice(ix, iy), b = lattice(ix + 1, iy);
  const double c = lattice(ix, iy + 1), d = lattice(ix + 1, iy + 1);
  return (a + (b - a) * sx) + ((c + (d - c) * sx) - (a + (b - a) * sx)) * sy;
}

}  // namespace

SceneGenerator::SceneGenerator(i64 img_size, i64 channels, int n_classes,
                               u64 seed)
    : img_(img_size), channels_(channels), n_classes_(n_classes), seed_(seed) {
  GEOFM_CHECK(img_size > 0 && channels > 0 && n_classes > 0);
}

SceneGenerator::ClassParams SceneGenerator::class_params(int class_id) const {
  GEOFM_CHECK(class_id >= 0 && class_id < n_classes_, "class out of range");
  Rng rng = Rng(seed_).split(0xc1a55ULL).split(static_cast<u64>(class_id));
  ClassParams p;
  // Classes are laid out on a (family x frequency-band x orientation-
  // bucket) lattice, so neighbouring class ids differ structurally, and
  // color palettes are drawn from a SHARED bank of 3 per dataset: color
  // statistics alone cannot identify the class. Discrimination requires
  // texture family / spatial frequency / orientation — nonlinear functions
  // of the pixels that reward encoder capacity, mirroring why scale helps
  // on real aerial imagery.
  p.family = class_id % 6;
  const int band = (class_id / 6) % 4;
  const int obucket = (class_id / 24) % 3;
  p.freq = 1.5 * std::pow(1.8, band) * (0.95 + 0.1 * rng.uniform());
  p.orientation =
      (static_cast<double>(obucket) / 3.0) * kTau / 2.0 +
      0.12 * (rng.uniform() - 0.5);
  p.contrast = 0.8 + 0.4 * rng.uniform();
  p.warp = 0.3 + 1.2 * rng.uniform();
  // Secondary fine-scale structure: a second family overlaid at ~3x the
  // frequency and a rotated orientation. Reconstructing and recognizing
  // the composite requires modeling two interacting textures — the
  // capacity-demanding part of the task.
  // Secondary structure: a FINE texture whose phase is locked to the class
  // (not jittered per sample) — a class "signature" in the 5–9 cycles/image
  // band. Reconstructing masked patches then requires recalling which
  // signature the visible patches exhibit: the memorization-capacity part
  // of the task, and the part that forces encoder features to carry class
  // identity. Coarse structure keeps per-sample phase jitter for
  // intra-class variability.
  p.family2 = (class_id * 7 + 3) % 6;
  p.freq2 = std::min(p.freq * (2.6 + 0.5 * rng.uniform()), 22.0);
  p.orientation2 = p.orientation + kTau / 8.0 + 0.1 * (rng.uniform() - 0.5);
  p.mix = 0.5;
  p.phase2_x = rng.uniform() * kTau;
  p.phase2_y = rng.uniform() * kTau;

  const u64 pal_id = mix64(seed_ ^ (0x9a1e77eULL + static_cast<u64>(class_id) *
                                                       0x2545f491ULL)) %
                     3;
  Rng pal_rng = Rng(seed_).split(0x9a1e77eULL).split(pal_id);
  for (int c = 0; c < 3; ++c) {
    for (int k = 0; k < 3; ++k) p.palette[c][k] = pal_rng.uniform();
  }
  return p;
}

namespace {

// Structural intensity in [0, 1] at warped coordinates (wu, wv) for one
// texture family.
double family_intensity(int family, double freq, double wu, double wv,
                        double phase_x, double phase_y, u64 noise_seed) {
  switch (family) {
    case 0:  // field stripes
      return 0.5 + 0.5 * std::sin(kTau * freq * wu + phase_x);
    case 1: {  // urban grid
      const double s =
          std::max(0.5 + 0.5 * std::sin(kTau * freq * wu + phase_x),
                   0.5 + 0.5 * std::sin(kTau * freq * wv + phase_y));
      return s > 0.8 ? 1.0 : 0.15;
    }
    case 2: {  // forest blobs
      const double s =
          value_noise(freq * wu * 2, freq * wv * 2, noise_seed ^ 3);
      return s * s;
    }
    case 3:  // water gradient with faint waves
      return 0.3 * wv + 0.1 * std::sin(kTau * 2 * freq * wu + phase_x) *
                            std::sin(kTau * 0.5 * freq * wv + phase_y) +
             0.35;
    case 4: {  // industrial checkers
      const double cx = std::sin(kTau * freq * wu + phase_x);
      const double cy = std::sin(kTau * freq * wv + phase_y);
      return (cx * cy > 0) ? 0.9 : 0.2;
    }
    default: {  // radial (airfield / circular irrigation)
      const double du = wu - 0.5, dv = wv - 0.5;
      const double r = std::sqrt(du * du + dv * dv);
      return 0.5 + 0.5 * std::sin(kTau * freq * 2.0 * r + phase_x);
    }
  }
}

}  // namespace

Tensor SceneGenerator::render(int class_id, u64 sample_key) const {
  const ClassParams p = class_params(class_id);
  Rng jitter = Rng(seed_).split(0x5a3eULL).split(sample_key);
  const double phase_x = jitter.uniform() * kTau;
  const double phase_y = jitter.uniform() * kTau;
  const double phase2_x = p.phase2_x;  // class-locked (see class_params)
  const double phase2_y = p.phase2_y;
  const double dorient = (jitter.uniform() - 0.5) * 0.15;
  const double illum = 0.9 + 0.2 * jitter.uniform();
  const double noise_amp = 0.02 + 0.03 * jitter.uniform();
  const u64 noise_seed = jitter.next_u64();
  const double cos_o = std::cos(p.orientation + dorient);
  const double sin_o = std::sin(p.orientation + dorient);
  const double cos_o2 = std::cos(p.orientation2 + dorient);
  const double sin_o2 = std::sin(p.orientation2 + dorient);

  Tensor img({channels_, img_, img_});
  float* out = img.data();
  const double inv = 1.0 / static_cast<double>(img_);

  for (i64 y = 0; y < img_; ++y) {
    for (i64 x = 0; x < img_; ++x) {
      const double u0 = static_cast<double>(x) * inv;
      const double v0 = static_cast<double>(y) * inv;
      // Domain warp gives organic variation within the class structure.
      const double du =
          p.warp * 0.08 * value_noise(4 * u0, 4 * v0, noise_seed ^ 1);
      const double dv =
          p.warp * 0.08 * value_noise(4 * u0 + 9, 4 * v0 + 9, noise_seed ^ 2);

      // Primary structure in class-rotated coordinates.
      const double wu1 = cos_o * u0 - sin_o * v0 + du;
      const double wv1 = sin_o * u0 + cos_o * v0 + dv;
      const double s1 = family_intensity(p.family, p.freq, wu1, wv1, phase_x,
                                         phase_y, noise_seed);
      // Secondary fine structure, independently rotated.
      const double wu2 = cos_o2 * u0 - sin_o2 * v0 + du;
      const double wv2 = sin_o2 * u0 + cos_o2 * v0 + dv;
      const double s2 = family_intensity(p.family2, p.freq2, wu2, wv2,
                                         phase2_x, phase2_y, noise_seed ^ 7);

      double s = p.mix * s1 + (1.0 - p.mix) * s2;
      s = 0.5 + (s - 0.5) * p.contrast;

      const double grain =
          noise_amp * (value_noise(16 * u0, 16 * v0, noise_seed ^ 4) - 0.5);
      for (i64 c = 0; c < channels_; ++c) {
        const double base = p.palette[c % 3][0];
        const double accent = p.palette[c % 3][1];
        const double value = illum * (base + (accent - base) * s) + grain;
        // Standardize roughly to zero mean / unit-ish scale.
        out[(c * img_ + y) * img_ + x] =
            static_cast<float>((value - 0.5) * 2.0);
      }
    }
  }
  return img;
}

}  // namespace geofm::data
