// Training-time augmentations. MAE pretraining uses light augmentation
// (random resized crop + horizontal flip); at geospatial proxy scale we
// provide flips, 90-degree rotations (aerial imagery has no canonical
// orientation) and shift-crops, all deterministic given an Rng stream.
#pragma once

#include "tensor/tensor.hpp"

namespace geofm::data {

/// Horizontal flip of a [C, H, W] image (out-of-place).
Tensor hflip(const Tensor& image);
/// Vertical flip of a [C, H, W] image.
Tensor vflip(const Tensor& image);
/// Rotate a square [C, H, W] image by k*90 degrees counter-clockwise.
Tensor rot90(const Tensor& image, int k);
/// Crop a [C, H, W] image at (top, left) to (h, w); bounds-checked.
Tensor crop(const Tensor& image, i64 top, i64 left, i64 h, i64 w);

/// Augmentation policy applied per sample during pretraining.
struct AugmentOptions {
  bool horizontal_flip = true;
  bool vertical_flip = true;   // valid for nadir aerial imagery
  bool rotate90 = true;        // likewise
  i64 max_shift = 0;           // shift-crop-and-pad jitter, pixels (0 = off)
};

/// Applies a random subset of the enabled augmentations, driven by `rng`.
/// Shape-preserving (shift uses reflect padding).
Tensor augment(const Tensor& image, const AugmentOptions& options, Rng& rng);

}  // namespace geofm::data
