#include "data/transforms.hpp"

#include <algorithm>

namespace geofm::data {
namespace {

void check_chw(const Tensor& image) {
  GEOFM_CHECK(image.rank() == 3, "transform expects [C,H,W], got "
                                     << image.shape_str());
}

}  // namespace

Tensor hflip(const Tensor& image) {
  check_chw(image);
  const i64 c = image.dim(0), h = image.dim(1), w = image.dim(2);
  Tensor out(image.shape());
  const float* src = image.data();
  float* dst = out.data();
  for (i64 ci = 0; ci < c; ++ci) {
    for (i64 y = 0; y < h; ++y) {
      const float* row = src + (ci * h + y) * w;
      float* orow = dst + (ci * h + y) * w;
      for (i64 x = 0; x < w; ++x) orow[x] = row[w - 1 - x];
    }
  }
  return out;
}

Tensor vflip(const Tensor& image) {
  check_chw(image);
  const i64 c = image.dim(0), h = image.dim(1), w = image.dim(2);
  Tensor out(image.shape());
  const float* src = image.data();
  float* dst = out.data();
  for (i64 ci = 0; ci < c; ++ci) {
    for (i64 y = 0; y < h; ++y) {
      std::copy_n(src + (ci * h + (h - 1 - y)) * w, w, dst + (ci * h + y) * w);
    }
  }
  return out;
}

Tensor rot90(const Tensor& image, int k) {
  check_chw(image);
  const i64 c = image.dim(0), h = image.dim(1), w = image.dim(2);
  k = ((k % 4) + 4) % 4;
  if (k == 0) return image.clone();
  GEOFM_CHECK(h == w || k == 2, "90/270-degree rotation needs square image");
  Tensor out(image.shape());
  const float* src = image.data();
  float* dst = out.data();
  for (i64 ci = 0; ci < c; ++ci) {
    for (i64 y = 0; y < h; ++y) {
      for (i64 x = 0; x < w; ++x) {
        i64 sy = y, sx = x;
        switch (k) {
          case 1: sy = x; sx = w - 1 - y; break;          // 90 ccw
          case 2: sy = h - 1 - y; sx = w - 1 - x; break;  // 180
          default: sy = h - 1 - x; sx = y; break;         // 270 ccw
        }
        dst[(ci * h + y) * w + x] = src[(ci * h + sy) * w + sx];
      }
    }
  }
  return out;
}

Tensor crop(const Tensor& image, i64 top, i64 left, i64 h, i64 w) {
  check_chw(image);
  const i64 c = image.dim(0), ih = image.dim(1), iw = image.dim(2);
  GEOFM_CHECK(top >= 0 && left >= 0 && h > 0 && w > 0 && top + h <= ih &&
                  left + w <= iw,
              "crop window out of bounds");
  Tensor out({c, h, w});
  const float* src = image.data();
  float* dst = out.data();
  for (i64 ci = 0; ci < c; ++ci) {
    for (i64 y = 0; y < h; ++y) {
      std::copy_n(src + (ci * ih + top + y) * iw + left, w,
                  dst + (ci * h + y) * w);
    }
  }
  return out;
}

Tensor augment(const Tensor& image, const AugmentOptions& options, Rng& rng) {
  check_chw(image);
  Tensor out = image.clone();
  if (options.horizontal_flip && rng.uniform() < 0.5) out = hflip(out);
  if (options.vertical_flip && rng.uniform() < 0.5) out = vflip(out);
  if (options.rotate90 && image.dim(1) == image.dim(2)) {
    const int k = static_cast<int>(rng.uniform_int(4));
    if (k != 0) out = rot90(out, k);
  }
  if (options.max_shift > 0) {
    const i64 h = out.dim(1), w = out.dim(2);
    const i64 dy = rng.uniform_int(2 * options.max_shift + 1) -
                   options.max_shift;
    const i64 dx = rng.uniform_int(2 * options.max_shift + 1) -
                   options.max_shift;
    if (dy != 0 || dx != 0) {
      // Shift with reflect padding, preserving shape.
      Tensor shifted(out.shape());
      const float* src = out.data();
      float* dst = shifted.data();
      const i64 c = out.dim(0);
      auto reflect = [](i64 v, i64 n) {
        if (v < 0) return -v;
        if (v >= n) return 2 * n - 2 - v;
        return v;
      };
      for (i64 ci = 0; ci < c; ++ci) {
        for (i64 y = 0; y < h; ++y) {
          for (i64 x = 0; x < w; ++x) {
            const i64 sy = reflect(y + dy, h);
            const i64 sx = reflect(x + dx, w);
            dst[(ci * h + y) * w + x] = src[(ci * h + sy) * w + sx];
          }
        }
      }
      out = shifted;
    }
  }
  return out;
}

}  // namespace geofm::data
