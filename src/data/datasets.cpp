#include "data/datasets.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace geofm::data {
namespace {

u64 dataset_seed(const std::string& name) {
  return mix64(hash_name(name.c_str()) ^ 0xda7a5e7ULL);
}

i64 scaled(i64 n, const DatasetScale& s) {
  GEOFM_CHECK(s.divisor >= 1);
  return std::max<i64>(1, n / s.divisor);
}

}  // namespace

SceneDataset::SceneDataset(std::string name, int n_classes, i64 n_train,
                           i64 n_test, i64 img_size, u64 seed)
    : name_(std::move(name)),
      n_train_(n_train),
      n_test_(n_test),
      gen_(img_size, 3, n_classes, seed) {
  GEOFM_CHECK(n_train_ >= 0 && n_test_ >= 0);
}

i64 SceneDataset::label_of(Split split, i64 index) const {
  GEOFM_CHECK(index >= 0 && index < size(split), "sample index out of range");
  // Balanced round-robin labels; a split-dependent rotation keeps the
  // first test samples from mirroring the first train samples.
  const i64 rotate = (split == Split::kTest) ? 7 : 0;
  return (index + rotate) % gen_.n_classes();
}

Sample SceneDataset::get(Split split, i64 index) const {
  const i64 label = label_of(split, index);
  // Disjoint sample keys across splits.
  const u64 key = mix64((split == Split::kTrain ? 0x7777777ULL : 0xeeeeeeeULL) ^
                        static_cast<u64>(index) * 0x2545f491ULL);
  return Sample{gen_.render(static_cast<int>(label), key), label};
}

std::pair<Tensor, std::vector<i64>> SceneDataset::make_batch(
    Split split, const std::vector<i64>& indices) const {
  GEOFM_CHECK(!indices.empty());
  const i64 c = gen_.channels(), hw = gen_.img_size();
  Tensor images({static_cast<i64>(indices.size()), c, hw, hw});
  std::vector<i64> labels;
  labels.reserve(indices.size());
  const i64 per = c * hw * hw;
  for (size_t i = 0; i < indices.size(); ++i) {
    Sample s = get(split, indices[i]);
    images.flat_view(static_cast<i64>(i) * per, per).copy_(s.image);
    labels.push_back(s.label);
  }
  return {images, labels};
}

SceneDataset million_aid_pretrain(i64 n_images, i64 img_size) {
  // Same generator seed as the MillionAID classification facade: the
  // pretraining distribution and the downstream MillionAID distribution
  // coincide, as in the paper (Sec. V-C discusses this overlap).
  return SceneDataset("MillionAID-pretrain", 51, n_images, 0, img_size,
                      dataset_seed("MillionAID"));
}

SceneDataset million_aid(i64 img_size, DatasetScale scale) {
  return SceneDataset("MillionAID", 51, scaled(1000, scale),
                      scaled(9000, scale), img_size,
                      dataset_seed("MillionAID"));
}

SceneDataset ucm(i64 img_size, DatasetScale scale) {
  return SceneDataset("UCM", 21, scaled(1050, scale), scaled(1050, scale),
                      img_size, dataset_seed("UCM"));
}

SceneDataset aid(i64 img_size, DatasetScale scale) {
  return SceneDataset("AID", 30, scaled(2000, scale), scaled(8000, scale),
                      img_size, dataset_seed("AID"));
}

SceneDataset nwpu(i64 img_size, DatasetScale scale) {
  return SceneDataset("NWPU", 45, scaled(3150, scale), scaled(28350, scale),
                      img_size, dataset_seed("NWPU"));
}

std::vector<SceneDataset> table2_classification_datasets(i64 img_size,
                                                         DatasetScale scale) {
  std::vector<SceneDataset> out;
  out.push_back(ucm(img_size, scale));
  out.push_back(aid(img_size, scale));
  out.push_back(nwpu(img_size, scale));
  out.push_back(million_aid(img_size, scale));
  return out;
}

}  // namespace geofm::data
