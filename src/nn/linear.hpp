// Fully connected layer: y = x W^T + b, applied over the last dimension.
#pragma once

#include "nn/module.hpp"

namespace geofm::nn {

class Linear : public Module {
 public:
  /// Weight is [out_features, in_features] (PyTorch layout); bias optional.
  Linear(std::string name, i64 in_features, i64 out_features, Rng& rng,
         bool bias = true);

  /// x: [..., in_features] -> [..., out_features]. Caches x for backward.
  Tensor forward(const Tensor& x);
  /// dy: [..., out_features] -> dx: [..., in_features]; accumulates dW/db.
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override;

  i64 in_features() const { return in_; }
  i64 out_features() const { return out_; }

  Parameter weight;
  Parameter bias;  // undefined value tensor when constructed without bias

 private:
  i64 in_;
  i64 out_;
  bool has_bias_;
  Tensor cached_x_;              // [rows, in], the flattened forward input
  std::vector<i64> cached_shape_;  // original forward input shape
};

}  // namespace geofm::nn
