// Pre-norm Transformer encoder block:
//   x = x + Attn(LN1(x));  x = x + MLP(LN2(x))
// This is the unit FSDP wraps (one FlatParameter per block), mirroring the
// paper's per-transformer-layer FSDP wrapping policy.
#pragma once

#include "nn/attention.hpp"
#include "nn/layernorm.hpp"
#include "nn/mlp.hpp"
#include "nn/module.hpp"

namespace geofm::nn {

class TransformerBlock : public Module {
 public:
  TransformerBlock(std::string name, i64 dim, i64 n_heads, i64 mlp_dim,
                   Rng& rng);

  /// x: [B, T, C] -> [B, T, C].
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override;

  LayerNorm ln1;
  MultiHeadSelfAttention attn;
  LayerNorm ln2;
  Mlp mlp;
};

}  // namespace geofm::nn
