#include "nn/linear.hpp"

#include "tensor/ops.hpp"

namespace geofm::nn {

Linear::Linear(std::string name, i64 in_features, i64 out_features, Rng& rng,
               bool with_bias)
    : in_(in_features), out_(out_features), has_bias_(with_bias) {
  weight.name = name + ".weight";
  weight.value = Tensor({out_, in_});
  trunc_normal_(weight.value, rng);
  if (has_bias_) {
    bias.name = name + ".bias";
    bias.value = Tensor::zeros({out_});
  }
}

Tensor Linear::forward(const Tensor& x) {
  GEOFM_CHECK(x.dim(-1) == in_, "Linear " << weight.name << ": input dim "
                                          << x.dim(-1) << " != " << in_);
  const i64 rows = x.numel() / in_;
  cached_shape_ = x.shape();
  cached_x_ = x.view({rows, in_});
  Tensor y = ops::matmul_nt(cached_x_, weight.value);
  if (has_bias_) ops::add_bias_rows(y, bias.value);
  // Restore the caller's leading shape with the new last dim.
  std::vector<i64> out_shape = x.shape();
  out_shape.back() = out_;
  return y.view(std::move(out_shape));
}

Tensor Linear::backward(const Tensor& dy) {
  GEOFM_CHECK(cached_x_.defined(), "Linear backward before forward");
  GEOFM_CHECK(dy.dim(-1) == out_);
  const i64 rows = dy.numel() / out_;
  GEOFM_CHECK(rows == cached_x_.dim(0), "Linear backward row mismatch");
  const Tensor dy2 = dy.view({rows, out_});

  if (weight.requires_grad) {
    weight.ensure_grad();
    // dW[out,in] += dy^T x
    Tensor dw = ops::matmul_tn(dy2, cached_x_);
    weight.grad.add_(dw.flatten());
  }
  if (has_bias_ && bias.requires_grad) {
    bias.ensure_grad();
    ops::accumulate_bias_grad(dy2, bias.grad);
  }
  // dx = dy W, returned in the caller's original input shape.
  Tensor dx = ops::matmul(dy2, weight.value.view({out_, in_}));
  return dx.view(cached_shape_);
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> out{&weight};
  if (has_bias_) out.push_back(&bias);
  return out;
}

}  // namespace geofm::nn
