#include "nn/module.hpp"

namespace geofm::nn {

void trunc_normal_(Tensor& t, Rng& rng, float stddev) {
  float* p = t.data();
  for (i64 i = 0; i < t.numel(); ++i) {
    // Rejection-sample within ±2 stddev; expected < 1.06 draws per entry.
    double v = rng.normal(0.0, stddev);
    while (v < -2.0 * stddev || v > 2.0 * stddev) {
      v = rng.normal(0.0, stddev);
    }
    p[i] = static_cast<float>(v);
  }
}

}  // namespace geofm::nn
