// StagedModel: the contract a model must satisfy to be wrapped by the
// parallel runtimes (DDP/FSDP). A stage is one transformer block; root
// parameters are everything outside the stages (embeddings, norms, heads).
#pragma once

#include <vector>

#include "nn/hooks.hpp"
#include "nn/module.hpp"

namespace geofm::nn {

class StagedModel {
 public:
  virtual ~StagedModel() = default;

  virtual int n_stages() const = 0;
  virtual std::vector<Module*> stages() = 0;
  virtual std::vector<Parameter*> root_params() = 0;
  virtual void install_stage_hooks(const StageHooks* hooks) = 0;
  /// The model as a Module (for whole-model parameter traversal).
  virtual Module& module() = 0;
};

}  // namespace geofm::nn
