#include "nn/patch_embed.hpp"

#include "tensor/ops.hpp"

namespace geofm::nn {

PatchEmbed::PatchEmbed(std::string name, i64 img_size, i64 patch_size,
                       i64 in_channels, i64 embed_dim, Rng& rng)
    : proj(name + ".proj", patch_size * patch_size * in_channels, embed_dim,
           rng),
      img_size_(img_size),
      patch_(patch_size),
      channels_(in_channels),
      n_patches_((img_size / patch_size) * (img_size / patch_size)),
      patch_dim_(patch_size * patch_size * in_channels) {
  GEOFM_CHECK(img_size % patch_size == 0,
              "image " << img_size << " not divisible by patch " << patch_size);
}

Tensor PatchEmbed::forward(const Tensor& images) {
  GEOFM_CHECK(images.rank() == 4 && images.dim(1) == channels_ &&
                  images.dim(2) == img_size_ && images.dim(3) == img_size_,
              "PatchEmbed expects [B," << channels_ << "," << img_size_ << ","
                                       << img_size_ << "], got "
                                       << images.shape_str());
  Tensor patches = ops::patchify(images, patch_);
  return proj.forward(patches);
}

Tensor PatchEmbed::backward(const Tensor& dtokens) {
  Tensor dpatches = proj.backward(dtokens);
  return ops::unpatchify(dpatches, patch_, channels_);
}

}  // namespace geofm::nn
