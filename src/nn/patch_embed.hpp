// Patch embedding: images are patchified ([B,C,H,W] -> [B,N,P*P*C]) and
// linearly projected to the model width. Equivalent to the conv-with-
// stride-P formulation of the ViT paper.
#pragma once

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace geofm::nn {

class PatchEmbed : public Module {
 public:
  PatchEmbed(std::string name, i64 img_size, i64 patch_size, i64 in_channels,
             i64 embed_dim, Rng& rng);

  /// images: [B, C, H, W] -> tokens [B, N, embed_dim].
  Tensor forward(const Tensor& images);
  /// dtokens -> dimages (rarely needed; patch pixels are leaves) — provided
  /// for completeness and gradcheck.
  Tensor backward(const Tensor& dtokens);

  std::vector<Parameter*> parameters() override { return proj.parameters(); }

  i64 n_patches() const { return n_patches_; }
  i64 patch_size() const { return patch_; }
  i64 patch_dim() const { return patch_dim_; }

  Linear proj;

 private:
  i64 img_size_;
  i64 patch_;
  i64 channels_;
  i64 n_patches_;
  i64 patch_dim_;
};

}  // namespace geofm::nn
