// Module/Parameter machinery.
//
// geofm uses hand-written forward/backward per layer instead of a dynamic
// autograd tape: the ViT/MAE graph is static, which keeps the backward
// pass explicit (and auditable against finite differences) and lets the
// FSDP runtime interleave communication between block-level forward and
// backward calls exactly where PyTorch's FSDP hooks would fire.
//
// Contract for every layer:
//   * forward(x) caches whatever backward needs (inputs, normalizer stats).
//   * backward(dy) ACCUMULATES into parameter .grad tensors and returns
//     dL/dx. Callers zero grads at step start (Optimizer/zero_grad()).
//   * backward must be called after the matching forward; layers are not
//     reentrant (one in-flight activation set), matching the training loop.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace geofm::nn {

/// A learnable tensor plus its gradient accumulator. FSDP may re-point
/// `value`/`grad` at views into a flat per-unit buffer; layers must always
/// read weights through the Parameter, never through cached copies.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  bool requires_grad = true;

  i64 numel() const { return value.numel(); }

  /// Allocates grad (zeroed) matching value's shape if missing.
  void ensure_grad() {
    if (!grad.defined()) grad = Tensor::zeros(value.shape());
  }
};

/// Base class providing parameter traversal; layers register parameters
/// by overriding `parameters()`.
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters owned (transitively) by this module, in a stable order.
  virtual std::vector<Parameter*> parameters() = 0;

  /// Total learnable element count.
  i64 num_params() {
    i64 n = 0;
    for (Parameter* p : parameters()) n += p->numel();
    return n;
  }

  /// Zeroes all gradients (allocating them on first use).
  void zero_grad() {
    for (Parameter* p : parameters()) {
      p->ensure_grad();
      p->grad.zero_();
    }
  }
};

/// Truncated-normal initialization (std 0.02, clipped to ±2 std), the ViT
/// reference initialization for projection weights.
void trunc_normal_(Tensor& t, Rng& rng, float stddev = 0.02f);

}  // namespace geofm::nn
