// Multi-head self-attention (the ViT encoder flavour: fused QKV projection,
// scaled dot-product, output projection; no attention dropout — the paper's
// MAE recipe trains without it).
#pragma once

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace geofm::nn {

class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(std::string name, i64 dim, i64 n_heads, Rng& rng);

  /// x: [B, T, C] -> [B, T, C].
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override;

  i64 dim() const { return dim_; }
  i64 n_heads() const { return heads_; }

  Linear qkv;   // C -> 3C
  Linear proj;  // C -> C

 private:
  i64 dim_;
  i64 heads_;
  i64 head_dim_;
  float scale_;

  // Forward cache (one in-flight activation set).
  i64 cached_b_ = 0, cached_t_ = 0;
  Tensor q_, k_, v_;  // each [B*H, T, Dh]
  Tensor attn_;       // [B*H, T, T]
};

}  // namespace geofm::nn
