// Transformer MLP: Linear -> GELU -> Linear.
#pragma once

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace geofm::nn {

class Mlp : public Module {
 public:
  Mlp(std::string name, i64 dim, i64 hidden_dim, Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override;

  Linear fc1;
  Linear fc2;

 private:
  Tensor cached_pre_act_;  // fc1 output, input of GELU
};

}  // namespace geofm::nn
