#include "nn/layernorm.hpp"

namespace geofm::nn {

LayerNorm::LayerNorm(std::string name, i64 dim, float eps)
    : dim_(dim), eps_(eps) {
  gamma.name = name + ".weight";
  gamma.value = Tensor::ones({dim});
  beta.name = name + ".bias";
  beta.value = Tensor::zeros({dim});
}

Tensor LayerNorm::forward(const Tensor& x) {
  GEOFM_CHECK(x.dim(-1) == dim_, "LayerNorm dim mismatch");
  cached_x_ = x;
  return ops::layernorm(x, gamma.value, beta.value, eps_, cache_);
}

Tensor LayerNorm::backward(const Tensor& dy) {
  GEOFM_CHECK(cached_x_.defined(), "LayerNorm backward before forward");
  gamma.ensure_grad();
  beta.ensure_grad();
  if (gamma.requires_grad) {
    return ops::layernorm_backward(dy, cached_x_, gamma.value, cache_,
                                   gamma.grad, beta.grad);
  }
  // Frozen affine: still need dx, route parameter grads to scratch.
  Tensor dg = Tensor::zeros({dim_});
  Tensor db = Tensor::zeros({dim_});
  return ops::layernorm_backward(dy, cached_x_, gamma.value, cache_, dg, db);
}

}  // namespace geofm::nn
