#include "nn/mlp.hpp"

#include "tensor/ops.hpp"

namespace geofm::nn {

Mlp::Mlp(std::string name, i64 dim, i64 hidden_dim, Rng& rng)
    : fc1(name + ".fc1", dim, hidden_dim, rng),
      fc2(name + ".fc2", hidden_dim, dim, rng) {}

Tensor Mlp::forward(const Tensor& x) {
  cached_pre_act_ = fc1.forward(x);
  return fc2.forward(ops::gelu(cached_pre_act_));
}

Tensor Mlp::backward(const Tensor& dy) {
  GEOFM_CHECK(cached_pre_act_.defined(), "Mlp backward before forward");
  Tensor dh = fc2.backward(dy);
  Tensor dpre = ops::gelu_backward(dh, cached_pre_act_);
  return fc1.backward(dpre);
}

std::vector<Parameter*> Mlp::parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : fc1.parameters()) out.push_back(p);
  for (Parameter* p : fc2.parameters()) out.push_back(p);
  return out;
}

}  // namespace geofm::nn
