// Layer normalization over the last dimension, with learnable affine.
#pragma once

#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace geofm::nn {

class LayerNorm : public Module {
 public:
  LayerNorm(std::string name, i64 dim, float eps = 1e-6f);

  /// x: [..., dim]; caches x and the per-row statistics.
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  std::vector<Parameter*> parameters() override { return {&gamma, &beta}; }

  Parameter gamma;
  Parameter beta;

 private:
  i64 dim_;
  float eps_;
  Tensor cached_x_;
  ops::LayerNormCache cache_;
};

}  // namespace geofm::nn
