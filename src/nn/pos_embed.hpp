// Fixed 2-D sine-cosine positional embeddings, as used by the MAE
// reference implementation (no learned positional parameters).
#pragma once

#include "tensor/tensor.hpp"

namespace geofm::nn {

/// 1-D sin-cos embedding of `positions` (length n) into `dim` channels
/// (dim must be even): [n, dim] with sin in the first half, cos in the
/// second, frequencies 1/10000^(2i/dim).
Tensor sincos_pos_embed_1d(i64 dim, const Tensor& positions);

/// 2-D sin-cos embedding for a grid_size x grid_size patch grid: [N(+1), dim]
/// where the first row is a zero vector for the class token when
/// `with_cls_token` is set. dim must be divisible by 4 for the 2-D split.
Tensor sincos_pos_embed_2d(i64 dim, i64 grid_size, bool with_cls_token);

}  // namespace geofm::nn
