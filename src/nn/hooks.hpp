// Stage hooks: the integration point between models and the FSDP runtime.
//
// A "stage" is one transformer block (the FSDP wrapping unit). Models call
// the hooks around each stage's forward/backward so a parallel wrapper can
// materialize (all-gather) parameters just-in-time, free them afterwards,
// and launch gradient reduction per stage — mirroring PyTorch FSDP's
// module hooks.
#pragma once

#include <functional>

namespace geofm::nn {

struct StageHooks {
  std::function<void(int)> before_forward;
  std::function<void(int)> after_forward;
  std::function<void(int)> before_backward;
  std::function<void(int)> after_backward;

  void fire_before_forward(int stage) const {
    if (before_forward) before_forward(stage);
  }
  void fire_after_forward(int stage) const {
    if (after_forward) after_forward(stage);
  }
  void fire_before_backward(int stage) const {
    if (before_backward) before_backward(stage);
  }
  void fire_after_backward(int stage) const {
    if (after_backward) after_backward(stage);
  }
};

}  // namespace geofm::nn
