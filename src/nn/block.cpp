#include "nn/block.hpp"

namespace geofm::nn {

TransformerBlock::TransformerBlock(std::string name, i64 dim, i64 n_heads,
                                   i64 mlp_dim, Rng& rng)
    : ln1(name + ".ln1", dim),
      attn(name + ".attn", dim, n_heads, rng),
      ln2(name + ".ln2", dim),
      mlp(name + ".mlp", dim, mlp_dim, rng) {}

Tensor TransformerBlock::forward(const Tensor& x) {
  Tensor h = x.clone();
  h.add_(attn.forward(ln1.forward(x)));
  Tensor out = h.clone();
  out.add_(mlp.forward(ln2.forward(h)));
  return out;
}

Tensor TransformerBlock::backward(const Tensor& dy) {
  // out = h + mlp(ln2(h)); dh = dy + ln2.bwd(mlp.bwd(dy))
  Tensor dh = dy.clone();
  dh.add_(ln2.backward(mlp.backward(dy)));
  // h = x + attn(ln1(x)); dx = dh + ln1.bwd(attn.bwd(dh))
  Tensor dx = dh.clone();
  dx.add_(ln1.backward(attn.backward(dh)));
  return dx;
}

std::vector<Parameter*> TransformerBlock::parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : ln1.parameters()) out.push_back(p);
  for (Parameter* p : attn.parameters()) out.push_back(p);
  for (Parameter* p : ln2.parameters()) out.push_back(p);
  for (Parameter* p : mlp.parameters()) out.push_back(p);
  return out;
}

}  // namespace geofm::nn
