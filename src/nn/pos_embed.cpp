#include "nn/pos_embed.hpp"

#include <cmath>

#include "util/common.hpp"

namespace geofm::nn {

Tensor sincos_pos_embed_1d(i64 dim, const Tensor& positions) {
  GEOFM_CHECK(dim % 2 == 0, "sincos dim must be even");
  const i64 n = positions.numel();
  const i64 half = dim / 2;
  Tensor out({n, dim});
  float* op = out.data();
  const float* pp = positions.data();
  for (i64 i = 0; i < n; ++i) {
    for (i64 j = 0; j < half; ++j) {
      const double omega =
          1.0 / std::pow(10000.0, static_cast<double>(j) / half);
      const double v = static_cast<double>(pp[i]) * omega;
      op[i * dim + j] = static_cast<float>(std::sin(v));
      op[i * dim + half + j] = static_cast<float>(std::cos(v));
    }
  }
  return out;
}

Tensor sincos_pos_embed_2d(i64 dim, i64 grid_size, bool with_cls_token) {
  GEOFM_CHECK(dim % 4 == 0, "2-D sincos dim must be divisible by 4");
  const i64 n = grid_size * grid_size;
  // Row/column coordinates of each patch.
  Tensor rows({n}), cols({n});
  for (i64 i = 0; i < n; ++i) {
    rows[i] = static_cast<float>(i / grid_size);
    cols[i] = static_cast<float>(i % grid_size);
  }
  Tensor emb_h = sincos_pos_embed_1d(dim / 2, rows);
  Tensor emb_w = sincos_pos_embed_1d(dim / 2, cols);

  const i64 lead = with_cls_token ? 1 : 0;
  Tensor out = Tensor::zeros({n + lead, dim});
  float* op = out.data();
  const float* hp = emb_h.data();
  const float* wp = emb_w.data();
  for (i64 i = 0; i < n; ++i) {
    float* row = op + (i + lead) * dim;
    for (i64 j = 0; j < dim / 2; ++j) {
      row[j] = hp[i * (dim / 2) + j];
      row[dim / 2 + j] = wp[i * (dim / 2) + j];
    }
  }
  return out;
}

}  // namespace geofm::nn
