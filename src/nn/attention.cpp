#include "nn/attention.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace geofm::nn {
namespace {

// [B, T, 3C] fused QKV -> three [B*H, T, Dh] tensors. The 3C axis is laid
// out as [which(3)][head][head_dim], matching torch's
// qkv.reshape(B,T,3,H,Dh).permute(2,0,3,1,4).
void split_qkv(const Tensor& qkv, i64 b, i64 t, i64 heads, i64 hd, Tensor& q,
               Tensor& k, Tensor& v) {
  const i64 c = heads * hd;
  const float* src = qkv.data();
  Tensor* outs[3] = {&q, &k, &v};
  // Pure layout copy, 3c floats per item: grain so a chunk moves ~64 KB.
  const i64 grain = std::max<i64>(1, 16384 / (3 * c));
  parallel_for(b * t, [&](i64 i0, i64 i1) {
    for (i64 bt = i0; bt < i1; ++bt) {
      const i64 bi = bt / t, ti = bt % t;
      const float* row = src + bt * 3 * c;
      for (int which = 0; which < 3; ++which) {
        float* dst = outs[which]->data();
        for (i64 h = 0; h < heads; ++h) {
          const float* s = row + which * c + h * hd;
          float* d = dst + ((bi * heads + h) * t + ti) * hd;
          for (i64 e = 0; e < hd; ++e) d[e] = s[e];
        }
      }
    }
  }, grain);
}

// Inverse layout transform for gradients: three [B*H, T, Dh] -> [B, T, 3C].
Tensor merge_qkv_grads(const Tensor& dq, const Tensor& dk, const Tensor& dv,
                       i64 b, i64 t, i64 heads, i64 hd) {
  const i64 c = heads * hd;
  Tensor out({b, t, 3 * c});
  float* dst = out.data();
  const Tensor* ins[3] = {&dq, &dk, &dv};
  const i64 grain = std::max<i64>(1, 16384 / (3 * c));
  parallel_for(b * t, [&](i64 i0, i64 i1) {
    for (i64 bt = i0; bt < i1; ++bt) {
      const i64 bi = bt / t, ti = bt % t;
      float* row = dst + bt * 3 * c;
      for (int which = 0; which < 3; ++which) {
        const float* src = ins[which]->data();
        for (i64 h = 0; h < heads; ++h) {
          const float* s = src + ((bi * heads + h) * t + ti) * hd;
          float* d = row + which * c + h * hd;
          for (i64 e = 0; e < hd; ++e) d[e] = s[e];
        }
      }
    }
  }, grain);
  return out;
}

// [B*H, T, Dh] -> [B, T, C] (concatenate heads).
Tensor merge_heads(const Tensor& x, i64 b, i64 t, i64 heads, i64 hd) {
  const i64 c = heads * hd;
  Tensor out({b, t, c});
  const float* src = x.data();
  float* dst = out.data();
  const i64 grain = std::max<i64>(1, 16384 / c);
  parallel_for(b * t, [&](i64 i0, i64 i1) {
    for (i64 bt = i0; bt < i1; ++bt) {
      const i64 bi = bt / t, ti = bt % t;
      float* row = dst + bt * c;
      for (i64 h = 0; h < heads; ++h) {
        const float* s = src + ((bi * heads + h) * t + ti) * hd;
        for (i64 e = 0; e < hd; ++e) row[h * hd + e] = s[e];
      }
    }
  }, grain);
  return out;
}

// [B, T, C] -> [B*H, T, Dh] (split heads of a single tensor).
Tensor split_heads(const Tensor& x, i64 b, i64 t, i64 heads, i64 hd) {
  const i64 c = heads * hd;
  Tensor out({b * heads, t, hd});
  const float* src = x.data();
  float* dst = out.data();
  const i64 grain = std::max<i64>(1, 16384 / c);
  parallel_for(b * t, [&](i64 i0, i64 i1) {
    for (i64 bt = i0; bt < i1; ++bt) {
      const i64 bi = bt / t, ti = bt % t;
      const float* row = src + bt * c;
      for (i64 h = 0; h < heads; ++h) {
        float* d = dst + ((bi * heads + h) * t + ti) * hd;
        for (i64 e = 0; e < hd; ++e) d[e] = row[h * hd + e];
      }
    }
  }, grain);
  return out;
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::string name, i64 dim,
                                               i64 n_heads, Rng& rng)
    : qkv(name + ".qkv", dim, 3 * dim, rng),
      proj(name + ".proj", dim, dim, rng),
      dim_(dim),
      heads_(n_heads),
      head_dim_(dim / n_heads),
      scale_(1.f / std::sqrt(static_cast<float>(dim / n_heads))) {
  GEOFM_CHECK(dim % n_heads == 0, "attention dim " << dim
                                  << " not divisible by heads " << n_heads);
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x) {
  GEOFM_CHECK(x.rank() == 3 && x.dim(2) == dim_,
              "attention expects [B,T," << dim_ << "], got " << x.shape_str());
  cached_b_ = x.dim(0);
  cached_t_ = x.dim(1);
  const i64 b = cached_b_, t = cached_t_;

  Tensor fused = qkv.forward(x);  // [B,T,3C]
  q_ = Tensor({b * heads_, t, head_dim_});
  k_ = Tensor({b * heads_, t, head_dim_});
  v_ = Tensor({b * heads_, t, head_dim_});
  split_qkv(fused, b, t, heads_, head_dim_, q_, k_, v_);

  Tensor scores = ops::bmm_nt(q_, k_);  // [B*H, T, T]
  scores.scale_(scale_);
  attn_ = ops::softmax_lastdim(scores);

  Tensor ctx = ops::bmm(attn_, v_);  // [B*H, T, Dh]
  Tensor merged = merge_heads(ctx, b, t, heads_, head_dim_);
  return proj.forward(merged);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& dy) {
  GEOFM_CHECK(attn_.defined(), "attention backward before forward");
  const i64 b = cached_b_, t = cached_t_;

  Tensor dmerged = proj.backward(dy);
  Tensor dctx = split_heads(dmerged, b, t, heads_, head_dim_);

  // ctx = attn @ v
  Tensor dattn = ops::bmm_nt(dctx, v_);       // [B*H, T, T]
  Tensor dv = ops::bmm_tn(attn_, dctx);       // [B*H, T, Dh]

  // attn = softmax(scale * q k^T)
  Tensor dscores = ops::softmax_backward_lastdim(dattn, attn_);
  dscores.scale_(scale_);

  Tensor dq = ops::bmm(dscores, k_);          // [B*H, T, Dh]
  Tensor dk = ops::bmm_tn(dscores, q_);       // scores^T rows: dk = ds^T q

  Tensor dfused = merge_qkv_grads(dq, dk, dv, b, t, heads_, head_dim_);
  return qkv.backward(dfused);
}

std::vector<Parameter*> MultiHeadSelfAttention::parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : qkv.parameters()) out.push_back(p);
  for (Parameter* p : proj.parameters()) out.push_back(p);
  return out;
}

}  // namespace geofm::nn
