// State descriptions: what one rank contributes to (or needs from) a
// checkpoint, as named logical-tensor slices aliasing live storage.
//
// The same StateDesc type drives both directions. On save, each slice is
// a range this rank owns and the Checkpointer stages/writes it; on load,
// each slice is a range this rank wants and CheckpointReader assembles it
// from whatever ranks wrote (reshard.hpp). The builders below produce the
// descriptions for the repo's three training topologies:
//
//   * replicated_state — plain modules and DDP. Every rank holds the full
//     model, so on save each rank writes an even 1/W contiguous split of
//     every tensor (the checkpoint is sharded on disk even though memory
//     is not), and on load every rank requests full tensors.
//   * fsdp_state — FSDP in any strategy. Slices come straight from
//     Fsdp::checkpoint_layout(): each rank saves/loads exactly its flat
//     shard's logical ranges, so no rank ever materializes the model.
//
// Optimizer state rides along under slot-derived names: the slot tensor
// for parameter `p` and slot `s` is the logical tensor "`p`#`s`" with
// p's shape (slot tensors are elementwise companions of their parameter,
// so they reshard by the same plan). Optimizer scalar counters (AdamW's
// step) are saved as "optim.<name>" integer counters.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "optim/optimizer.hpp"
#include "parallel/fsdp.hpp"
#include "tensor/tensor.hpp"

namespace geofm::ckpt {

/// One named logical-tensor range, aliasing live storage. `data` holds
/// elements [begin, begin + data.numel()) of the flattened tensor.
struct TensorSlice {
  std::string name;
  std::vector<i64> shape;  // full logical shape of the named tensor
  i64 begin = 0;
  Tensor data;
};

/// A rank's view of the checkpointable training state.
struct StateDesc {
  std::vector<TensorSlice> slices;
};

/// Logical tensor name of an optimizer slot ("<param>#<slot>").
std::string slot_tensor_name(const std::string& param_name, const char* slot);

/// State description for replicated training (plain module or DDP).
/// `optimizer` may be null (parameters only). With `for_save`, rank
/// `rank` of `world` contributes an even contiguous 1/world split of
/// every tensor; otherwise every tensor is requested in full.
StateDesc replicated_state(nn::Module& module, optim::Optimizer* optimizer,
                           int rank, int world, bool for_save);

/// Shard-local state description for FSDP training (any strategy). Used
/// unchanged for save and load. `optimizer` may be null; when given it
/// must be stepping fsdp.optimizer_parameters().
StateDesc fsdp_state(parallel::Fsdp& fsdp, optim::Optimizer* optimizer);

/// The optimizer's scalar counters as checkpoint counters
/// ("optim.<name>" -> value); empty map for stateless optimizers.
std::map<std::string, i64> optimizer_scalars(optim::Optimizer& optimizer);

}  // namespace geofm::ckpt
