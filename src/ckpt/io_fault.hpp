// Storage-path fault injection seam.
//
// The ckpt layer tests its robustness the way the comm layer does: a
// `comm::FaultInjector` carrying IO events (`FaultEvent::io_fail_write`
// and friends) is installed process-wide here, and every storage seam —
// primary shard writes (Checkpointer), shard reads at restore
// (CheckpointReader), and uploader file copies — consults it via
// `FaultInjector::before_io` before touching the filesystem. The slot is
// process-global because checkpoint IO already rendezvouses through
// process-global state (the save coordinator): one injector covers every
// rank of the in-process world, exactly like
// `Communicator::install_fault_injector` covers a group. Install nullptr
// to clear. The training driver installs its configured injector
// (idempotently, from every rank); `run_elastic` installs per attempt and
// clears on exit.
#pragma once

#include <memory>

namespace geofm::comm {
class FaultInjector;
}

namespace geofm::ckpt {

void install_io_fault_injector(
    std::shared_ptr<comm::FaultInjector> injector);
std::shared_ptr<comm::FaultInjector> io_fault_injector();

}  // namespace geofm::ckpt
