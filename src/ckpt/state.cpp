#include "ckpt/state.hpp"

#include "ckpt/reshard.hpp"

namespace geofm::ckpt {
namespace {

/// Even contiguous split: rank r of W owns [n*r/W, n*(r+1)/W).
Range even_split(i64 numel, int rank, int world) {
  const i64 begin = numel * rank / world;
  const i64 end = numel * (rank + 1) / world;
  return {begin, end - begin};
}

void add_replicated(StateDesc& desc, const std::string& name,
                    const std::vector<i64>& shape, const Tensor& storage,
                    int rank, int world, bool for_save) {
  TensorSlice slice;
  slice.name = name;
  slice.shape = shape;
  if (for_save) {
    const Range r = even_split(storage.numel(), rank, world);
    if (r.len == 0) return;  // tiny tensor: this rank contributes nothing
    slice.begin = r.begin;
    slice.data = storage.flat_view(r.begin, r.len);
  } else {
    slice.begin = 0;
    slice.data = storage.flat_view(0, storage.numel());
  }
  desc.slices.push_back(std::move(slice));
}

}  // namespace

std::string slot_tensor_name(const std::string& param_name, const char* slot) {
  return param_name + "#" + slot;
}

StateDesc replicated_state(nn::Module& module, optim::Optimizer* optimizer,
                           int rank, int world, bool for_save) {
  GEOFM_CHECK(world >= 1 && rank >= 0 && rank < world,
              "bad rank " << rank << "/" << world);
  StateDesc desc;
  for (nn::Parameter* p : module.parameters()) {
    add_replicated(desc, p->name, p->value.shape(), p->value, rank, world,
                   for_save);
  }
  if (optimizer != nullptr) {
    for (const auto& slot : optimizer->state_view().slots) {
      add_replicated(desc, slot_tensor_name(slot.param->name, slot.slot),
                     slot.param->value.shape(), slot.tensor, rank, world,
                     for_save);
    }
  }
  return desc;
}

StateDesc fsdp_state(parallel::Fsdp& fsdp, optim::Optimizer* optimizer) {
  StateDesc desc;
  auto layouts = fsdp.checkpoint_layout();

  // Optimizer slots keyed by the flat parameter they accompany; each
  // slot tensor shares its flat parameter's element layout, so the same
  // ranges slice both.
  optim::OptimizerStateView view;
  if (optimizer != nullptr) view = optimizer->state_view();

  for (const parallel::FsdpUnitLayout& unit : layouts) {
    for (const parallel::FsdpParamRange& r : unit.ranges) {
      TensorSlice slice;
      slice.name = r.param->name;
      slice.shape = r.param->value.shape();
      slice.begin = r.param_begin;
      slice.data = unit.shard.flat_view(r.shard_begin, r.len);
      desc.slices.push_back(std::move(slice));
    }
    for (const auto& slot : view.slots) {
      if (slot.param != unit.opt_param) continue;
      for (const parallel::FsdpParamRange& r : unit.ranges) {
        TensorSlice slice;
        slice.name = slot_tensor_name(r.param->name, slot.slot);
        slice.shape = r.param->value.shape();
        slice.begin = r.param_begin;
        slice.data = slot.tensor.flat_view(r.shard_begin, r.len);
        desc.slices.push_back(std::move(slice));
      }
    }
  }
  return desc;
}

std::map<std::string, i64> optimizer_scalars(optim::Optimizer& optimizer) {
  std::map<std::string, i64> out;
  for (const auto& scalar : optimizer.state_view().scalars) {
    out["optim." + std::string(scalar.name)] = *scalar.value;
  }
  return out;
}

}  // namespace geofm::ckpt
