#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/io_fault.hpp"
#include "ckpt/reshard.hpp"
#include "ckpt/uploader.hpp"
#include "comm/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_context.hpp"

namespace geofm::ckpt {
namespace {

namespace fs = std::filesystem;

std::string canonical_or_self(const std::string& path) {
  std::error_code ec;
  fs::path p = fs::weakly_canonical(path, ec);
  return ec ? path : p.string();
}

// ----- save coordinator ------------------------------------------------------
//
// Ranks of one training process share the filesystem *and* the address
// space, so publication is coordinated in-process: the last rank whose
// shard lands for a given (root, step) finalizes the checkpoint. Keyed by
// canonical root path so distinct spellings of one directory rendezvous.

struct Rendezvous {
  int expected = 0;
  int arrived = 0;
};

std::mutex g_coord_mu;
std::map<std::string, Rendezvous>& coord_map() {
  static auto* m = new std::map<std::string, Rendezvous>();
  return *m;
}

/// Records one shard arrival; true when the caller is the last and must
/// publish the checkpoint.
bool coordinator_arrive(const std::string& root, i64 step, int world) {
  std::ostringstream key;
  key << canonical_or_self(root) << "\n" << step;
  std::lock_guard<std::mutex> lk(g_coord_mu);
  Rendezvous& rv = coord_map()[key.str()];
  if (rv.expected == 0) {
    rv.expected = world;
  } else if (rv.expected != world) {
    throw Error("conflicting world sizes saving step " +
                std::to_string(step) + " under " + root);
  }
  if (++rv.arrived < rv.expected) return false;
  coord_map().erase(key.str());
  return true;
}

std::string tmp_step_dir(const std::string& root, i64 step) {
  return (fs::path(root) / ("." + format::step_dir_name(step) + ".tmp"))
      .string();
}

/// Manifest + rename + LATEST: the atomic publication step.
void publish_checkpoint(const std::string& root, i64 step, int world) {
  const std::string tmp = tmp_step_dir(root, step);
  format::Manifest manifest;
  manifest.step = step;
  manifest.world = world;
  for (int r = 0; r < world; ++r) {
    const fs::path shard = fs::path(tmp) / format::shard_file_name(r);
    if (!fs::exists(shard)) {
      throw Error("shard missing at publication: " + shard.string());
    }
    manifest.shards.push_back(format::shard_file_name(r));
  }
  format::write_manifest(tmp, manifest);

  const fs::path final_dir = fs::path(root) / format::step_dir_name(step);
  std::error_code ec;
  fs::remove_all(final_dir, ec);  // re-saving a step replaces it
  fs::rename(tmp, final_dir, ec);
  if (ec) {
    throw Error("cannot publish checkpoint " + final_dir.string() + ": " +
                ec.message());
  }
  // Convenience pointer; latest_step()'s scan stays authoritative.
  std::ofstream latest(fs::path(root) / "LATEST", std::ios::trunc);
  latest << format::step_dir_name(step) << "\n";
}

/// Tolerated save failure: count + warn, training goes on.
void report_tolerated_failure(const std::exception_ptr& err, i64 step) {
  std::string what = "unknown error";
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  static auto& failures =
      obs::MetricsRegistry::instance().counter("ckpt.save_failures");
  failures.add(1);
  GEOFM_WARN("checkpoint save at step " << step
                                        << " failed (tolerated): " << what);
}

}  // namespace

// ----- Checkpointer ----------------------------------------------------------

Checkpointer::Checkpointer(bool async) : async_(async) {}

Checkpointer::~Checkpointer() {
  if (writer_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    writer_.join();
  }
}

Checkpointer::Staged Checkpointer::stage(const SaveRequest& req) {
  obs::TraceScope span("ckpt.snapshot", "ckpt", "step", req.step);
  const double t0 = monotonic_seconds();
  Staged staged;
  staged.dir = req.dir;
  staged.step = req.step;
  staged.retention = req.retention;
  staged.tolerate = req.tolerate_failures;
  staged.shard.rank = req.rank;
  staged.shard.world = req.world;
  staged.shard.counters = req.counters;
  staged.shard.rng_streams = req.rng_streams;
  staged.buffers.reserve(req.state.slices.size());
  staged.shard.records.reserve(req.state.slices.size());
  for (const TensorSlice& slice : req.state.slices) {
    std::vector<float> buf(static_cast<std::size_t>(slice.data.numel()));
    std::memcpy(buf.data(), slice.data.data(),
                buf.size() * sizeof(float));
    staged.buffers.push_back(std::move(buf));
    format::ShardRecord rec;
    rec.name = slice.name;
    rec.shape = slice.shape;
    rec.begin = slice.begin;
    rec.len = slice.data.numel();
    rec.data = staged.buffers.back().data();
    staged.shard.records.push_back(std::move(rec));
  }
  static auto& snap = obs::MetricsRegistry::instance().histogram(
      "ckpt.snapshot_seconds");
  snap.observe(monotonic_seconds() - t0);
  return staged;
}

void Checkpointer::write_staged(const Staged& staged) {
  obs::TraceScope span("ckpt.write", "ckpt", "step", staged.step);
  const double t0 = monotonic_seconds();
  const std::string tmp = tmp_step_dir(staged.dir, staged.step);
  const std::string path =
      (fs::path(tmp) / format::shard_file_name(staged.shard.rank)).string();
  // Storage-path fault seam: a failed write throws before any bytes land;
  // a torn write lands a truncated shard in the hidden temp dir and then
  // throws — either way coordinator_arrive never runs for this rank, so
  // the step can never publish with a damaged shard in it.
  if (auto injector = io_fault_injector()) {
    const auto fault =
        injector->before_io(comm::IoPath::kWrite, staged.shard.rank);
    if (fault.fail || fault.unreadable) throw Error(fault.reason);
    if (fault.torn) {
      format::write_shard_file(path, staged.shard);
      std::error_code tear_ec;
      const auto size = fs::file_size(path, tear_ec);
      if (!tear_ec) fs::resize_file(path, size / 2, tear_ec);
      throw Error(fault.reason);
    }
  }
  format::write_shard_file(path, staged.shard);
  if (coordinator_arrive(staged.dir, staged.step, staged.shard.world)) {
    publish_checkpoint(staged.dir, staged.step, staged.shard.world);
    // Timeline marker (run-health report): the step became durable here.
    obs::trace_instant("ckpt.published", "ckpt");
    // Enqueue for upload *before* GC so retention sees the new step as
    // protected from the instant it is published.
    notify_checkpoint_published(staged.dir, staged.step);
    apply_retention(staged.dir, staged.retention);
  }
  i64 bytes = 0;
  for (const auto& buf : staged.buffers) {
    bytes += static_cast<i64>(buf.size() * sizeof(float));
  }
  auto& reg = obs::MetricsRegistry::instance();
  static auto& written = reg.counter("ckpt.bytes_written");
  static auto& writes = reg.counter("ckpt.shard_writes");
  static auto& write_s = reg.histogram("ckpt.write_seconds");
  written.add(static_cast<double>(bytes));
  writes.add(1);
  write_s.observe(monotonic_seconds() - t0);
}

void Checkpointer::writer_loop(int owner_rank) {
  // The writer acts for its owning rank: its spans group under that
  // rank's process track in trace exports.
  set_thread_rank(owner_rank);
  obs::set_thread_label("ckpt.writer");
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return pending_ != nullptr || stop_; });
    if (pending_ == nullptr) return;  // stop with nothing queued
    auto staged = std::move(pending_);
    pending_ = nullptr;
    lk.unlock();
    std::exception_ptr err;
    try {
      write_staged(*staged);
    } catch (...) {
      err = std::current_exception();
    }
    if (err && staged->tolerate) {
      report_tolerated_failure(err, staged->step);
      err = nullptr;
    }
    lk.lock();
    busy_ = false;
    if (err && !error_) error_ = err;
    cv_.notify_all();
    if (stop_) return;
  }
}

void Checkpointer::save(const SaveRequest& req) {
  wait_idle();
  auto staged = std::make_unique<Staged>(stage(req));
  static auto& saves = obs::MetricsRegistry::instance().counter("ckpt.saves");
  saves.add(1);
  if (!async_) {
    try {
      write_staged(*staged);
    } catch (...) {
      if (!staged->tolerate) throw;
      report_tolerated_failure(std::current_exception(), staged->step);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_ = std::move(staged);
    busy_ = true;
  }
  if (!writer_.joinable()) {
    writer_ = std::thread([this, rank = req.rank] { writer_loop(rank); });
  }
  cv_.notify_all();
}

void Checkpointer::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  if (busy_) {
    obs::TraceScope span("ckpt.stall", "ckpt");
    static auto& stalls =
        obs::MetricsRegistry::instance().counter("ckpt.stalls");
    stalls.add(1);
    cv_.wait(lk, [&] { return !busy_; });
  }
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void reset_save_state(const std::string& root) {
  {
    const std::string prefix = canonical_or_self(root) + "\n";
    std::lock_guard<std::mutex> lk(g_coord_mu);
    auto& map = coord_map();
    for (auto it = map.begin(); it != map.end();) {
      if (it->first.rfind(prefix, 0) == 0) {
        it = map.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    const bool save_tmp = name.rfind(".step_", 0) == 0;
    const bool gc_tmp = name.rfind(".gc_step_", 0) == 0;
    if ((save_tmp || gc_tmp) &&
        name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      std::error_code rm_ec;  // concurrent rank may have removed it first
      fs::remove_all(entry.path(), rm_ec);
    }
  }
}

// ----- retention -------------------------------------------------------------

std::vector<i64> apply_retention(const std::string& root,
                                 const RetentionPolicy& policy) {
  std::vector<i64> removed;
  if (!policy.enabled()) return removed;
  obs::TraceScope span("ckpt.gc", "ckpt");

  std::error_code ec;
  if (!fs::is_directory(root, ec)) return removed;
  std::vector<i64> steps;  // complete checkpoints only
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("step_", 0) != 0) continue;
    const std::string digits = name.substr(5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    if (!fs::exists(entry.path() / "manifest.txt")) continue;
    steps.push_back(static_cast<i64>(std::stoll(digits)));
  }
  std::sort(steps.begin(), steps.end());

  const std::size_t n = steps.size();
  const std::size_t keep_from =
      n > static_cast<std::size_t>(policy.keep_last)
          ? n - static_cast<std::size_t>(policy.keep_last)
          : 0;
  for (std::size_t i = 0; i < keep_from; ++i) {
    const i64 step = steps[i];
    if (policy.keep_multiple_of > 0 && step % policy.keep_multiple_of == 0) {
      continue;  // anchor checkpoint
    }
    if (uploader_protects(root, step)) {
      // Queued, mid-upload, or the newest step the secondary location
      // holds — the recovery anchor if the primary root is lost.
      continue;
    }
    // Atomic unpublish: rename out of the step_* namespace first, so a
    // reader that races the (non-atomic) recursive delete never opens a
    // half-deleted checkpoint.
    const fs::path published = fs::path(root) / format::step_dir_name(step);
    const fs::path doomed =
        fs::path(root) / (".gc_" + format::step_dir_name(step) + ".tmp");
    std::error_code gc_ec;
    fs::remove_all(doomed, gc_ec);  // leftover from an interrupted GC
    fs::rename(published, doomed, gc_ec);
    if (gc_ec) continue;  // lost a race with another GC pass; keep going
    fs::remove_all(doomed, gc_ec);
    removed.push_back(step);
  }
  if (!removed.empty()) {
    static auto& gc_removed =
        obs::MetricsRegistry::instance().counter("ckpt.retention_removed");
    gc_removed.add(static_cast<double>(removed.size()));
  }
  return removed;
}

// ----- single-file save ------------------------------------------------------

void save_file(const std::string& path, const StateDesc& state,
               const std::map<std::string, i64>& counters,
               const std::map<std::string, u64>& rng_streams) {
  obs::TraceScope span("ckpt.save_file", "ckpt");
  format::ShardData shard;
  shard.rank = 0;
  shard.world = 1;
  shard.counters = counters;
  shard.rng_streams = rng_streams;
  // Slices alias live tensors whose storage is contiguous; no staging
  // copy is needed for a synchronous single-file write.
  shard.records.reserve(state.slices.size());
  for (const TensorSlice& slice : state.slices) {
    format::ShardRecord rec;
    rec.name = slice.name;
    rec.shape = slice.shape;
    rec.begin = slice.begin;
    rec.len = slice.data.numel();
    rec.data = slice.data.data();
    shard.records.push_back(std::move(rec));
  }
  format::write_shard_file(path, shard);
}

// ----- resolution ------------------------------------------------------------

PublishedManifest latest_published_manifest(const std::string& root) {
  PublishedManifest latest;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return latest;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("step_", 0) != 0) continue;
    const std::string digits = name.substr(5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    if (!fs::exists(entry.path() / "manifest.txt")) continue;  // incomplete
    const i64 step = static_cast<i64>(std::stoll(digits));
    if (step > latest.step) {
      latest.step = step;
      latest.dir = entry.path().string();
    }
  }
  return latest;
}

i64 latest_step(const std::string& root) {
  return latest_published_manifest(root).step;
}

std::vector<PublishedSource> published_sources(
    const std::vector<std::string>& sources) {
  std::vector<PublishedSource> out;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].empty()) continue;
    const PublishedManifest latest = latest_published_manifest(sources[i]);
    if (!latest.found()) continue;
    PublishedSource cand;
    cand.step = latest.step;
    cand.dir = latest.dir;
    cand.source = i;
    out.push_back(std::move(cand));
  }
  // Newest step first; on a tie the earlier source wins (a mirror is
  // only consulted when it is strictly ahead of — or the primary lacks —
  // that step).
  std::stable_sort(out.begin(), out.end(),
                   [](const PublishedSource& a, const PublishedSource& b) {
                     return a.step > b.step;
                   });
  return out;
}

void verify_checkpoint_dir(const std::string& dir) {
  const format::Manifest manifest = format::read_manifest(dir);
  for (const std::string& shard : manifest.shards) {
    const std::string path = (fs::path(dir) / shard).string();
    // Same seam as restore reads: a verification pass is a read of every
    // record, and injected unreadable/torn faults must be able to hit it.
    if (auto injector = io_fault_injector()) {
      const auto fault =
          injector->before_io(comm::IoPath::kRead, this_thread_rank());
      if (fault.any()) throw Error(fault.reason + " verifying " + path);
    }
    const format::ShardHeader header = format::read_shard_header(path);
    for (const format::ShardIndexEntry& entry : header.records) {
      format::read_shard_record(path, entry);  // throws on bad checksum
    }
  }
}

std::string resolve_checkpoint(const std::string& path) {
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) return path;
  if (fs::is_directory(path, ec)) {
    if (fs::exists(fs::path(path) / "manifest.txt")) return path;
    const PublishedManifest latest = latest_published_manifest(path);
    if (latest.found()) return latest.dir;
    throw Error("no complete checkpoint found under " + path);
  }
  throw Error("checkpoint path does not exist: " + path);
}

// ----- CheckpointReader ------------------------------------------------------

CheckpointReader::CheckpointReader(const std::string& path)
    : location_(resolve_checkpoint(path)) {
  obs::TraceScope span("ckpt.open", "ckpt");
  std::error_code ec;
  if (fs::is_regular_file(location_, ec)) {
    files_.push_back(location_);
  } else {
    const format::Manifest manifest = format::read_manifest(location_);
    world_ = manifest.world;
    for (const std::string& shard : manifest.shards) {
      files_.push_back((fs::path(location_) / shard).string());
    }
  }
  for (std::size_t f = 0; f < files_.size(); ++f) {
    format::ShardHeader header = format::read_shard_header(files_[f]);
    if (files_.size() == 1) {
      world_ = header.world;
    } else if (header.world != world_) {
      throw Error("shard " + files_[f] + " claims world " +
                  std::to_string(header.world) + ", manifest says " +
                  std::to_string(world_));
    }
    // Counters and RNG streams are replicated into every shard; merging
    // keeps any one shard sufficient to recover them.
    for (const auto& [name, value] : header.counters) {
      counters_[name] = value;
    }
    for (const auto& [name, state] : header.rng_streams) {
      rng_[name] = state;
    }
    for (format::ShardIndexEntry& entry : header.records) {
      StoredTensor& tensor = tensors_[entry.name];
      if (tensor.parts.empty()) {
        tensor.shape = entry.shape;
      } else if (tensor.shape != entry.shape) {
        throw Error("inconsistent shapes for " + entry.name +
                    " across shards of " + location_);
      }
      tensor.parts.push_back({f, std::move(entry), nullptr});
    }
  }
}

bool CheckpointReader::has_counter(const std::string& name) const {
  return counters_.count(name) != 0;
}

i64 CheckpointReader::counter(const std::string& name, i64 fallback) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? fallback : it->second;
}

bool CheckpointReader::has_rng_stream(const std::string& name) const {
  return rng_.count(name) != 0;
}

u64 CheckpointReader::rng_state(const std::string& name) const {
  auto it = rng_.find(name);
  if (it == rng_.end()) {
    throw Error("checkpoint has no RNG stream '" + name + "': " + location_);
  }
  return it->second;
}

const float* CheckpointReader::part_data(StoredPart& part) {
  if (part.data == nullptr) {
    if (auto injector = io_fault_injector()) {
      const auto fault =
          injector->before_io(comm::IoPath::kRead, this_thread_rank());
      if (fault.any()) {
        throw Error(fault.reason + " reading " + files_[part.file]);
      }
    }
    part.data = std::make_shared<std::vector<float>>(
        format::read_shard_record(files_[part.file], part.entry));
  }
  return part.data->data();
}

void CheckpointReader::restore(const StateDesc& desc) {
  obs::TraceScope span("ckpt.restore", "ckpt");
  for (const TensorSlice& slice : desc.slices) {
    auto it = tensors_.find(slice.name);
    if (it == tensors_.end()) {
      throw Error("checkpoint is missing tensor " + slice.name + ": " +
                  location_);
    }
    StoredTensor& stored = it->second;
    if (stored.shape != slice.shape) {
      auto shape_str = [](const std::vector<i64>& s) {
        std::ostringstream os;
        os << "[";
        for (std::size_t i = 0; i < s.size(); ++i) {
          os << (i ? ", " : "") << s[i];
        }
        os << "]";
        return os.str();
      };
      throw Error("shape mismatch for " + slice.name + ": checkpoint has " +
                  shape_str(stored.shape) + ", model expects " +
                  shape_str(slice.shape));
    }
    std::vector<Range> ranges;
    ranges.reserve(stored.parts.size());
    for (const StoredPart& part : stored.parts) {
      ranges.push_back({part.entry.begin, part.entry.len});
    }
    std::vector<RangeCopy> plan;
    try {
      plan = plan_reads(ranges, slice.begin, slice.data.numel());
    } catch (const Error& e) {
      throw Error(std::string("restoring ") + slice.name + ": " + e.what());
    }
    Tensor target = slice.data;  // aliases the slice's (shared) storage
    float* dst = target.data();
    for (const RangeCopy& copy : plan) {
      const float* src = part_data(stored.parts[copy.source]);
      std::memcpy(dst + copy.dst_offset, src + copy.src_offset,
                  static_cast<std::size_t>(copy.len) * sizeof(float));
    }
  }
}

void restore_optimizer_scalars(const CheckpointReader& reader,
                               optim::Optimizer& optimizer) {
  for (const auto& scalar : optimizer.state_view().scalars) {
    const std::string name = "optim." + std::string(scalar.name);
    if (!reader.has_counter(name)) {
      throw Error("checkpoint is missing optimizer counter " + name);
    }
    *scalar.value = reader.counter(name, 0);
  }
}

}  // namespace geofm::ckpt
