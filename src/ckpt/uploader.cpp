#include "ckpt/uploader.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>

#include "ckpt/format.hpp"
#include "ckpt/io_fault.hpp"
#include "comm/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/log.hpp"
#include "util/thread_context.hpp"

namespace geofm::ckpt {
namespace {

namespace fs = std::filesystem;

std::string canonical_or_self(const std::string& path) {
  std::error_code ec;
  fs::path p = fs::weakly_canonical(path, ec);
  return ec ? path : p.string();
}

// ----- per-root registry -----------------------------------------------------
//
// The publish path and retention GC reach the uploader by checkpoint root
// (they only know the root, not who owns the Uploader). Lock order is
// registry mutex -> uploader mutex, everywhere: the registry lock is held
// across enqueue/protects so an Uploader can never be destroyed between
// lookup and call.

std::mutex g_registry_mu;
std::map<std::string, Uploader*>& registry() {
  static auto* m = new std::map<std::string, Uploader*>();
  return *m;
}

}  // namespace

// ----- Uploader --------------------------------------------------------------

Uploader::Uploader(UploaderOptions opts) : opts_(std::move(opts)) {
  GEOFM_CHECK(opts_.enabled(), "Uploader requires a destination");
  GEOFM_CHECK(!opts_.source.empty(), "Uploader requires a source root");
  GEOFM_CHECK(opts_.max_retries >= 1, "Uploader needs at least one attempt");
  {
    std::lock_guard<std::mutex> lk(g_registry_mu);
    auto [it, inserted] =
        registry().emplace(canonical_or_self(opts_.source), this);
    GEOFM_CHECK(inserted, "an Uploader is already registered for " +
                              opts_.source);
  }
  worker_ = std::thread([this] { run(); });
}

Uploader::~Uploader() {
  {
    std::lock_guard<std::mutex> lk(g_registry_mu);
    registry().erase(canonical_or_self(opts_.source));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void Uploader::enqueue(i64 step) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    if (step == current_ || step == newest_uploaded_) return;
    if (std::find(queue_.begin(), queue_.end(), step) != queue_.end()) {
      return;
    }
    queue_.push_back(step);
  }
  cv_.notify_all();
}

void Uploader::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return queue_.empty() && current_ == -1; });
}

bool Uploader::protects(i64 step) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (step == current_ || step == newest_uploaded_) return true;
  return std::find(queue_.begin(), queue_.end(), step) != queue_.end();
}

i64 Uploader::newest_uploaded_step() const {
  std::lock_guard<std::mutex> lk(mu_);
  return newest_uploaded_;
}

UploaderStats Uploader::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  UploaderStats out = stats_;
  out.newest_uploaded_step = newest_uploaded_;
  return out;
}

void Uploader::check_deadline(double started, i64 step) const {
  if (opts_.attempt_timeout_seconds <= 0) return;
  if (monotonic_seconds() - started > opts_.attempt_timeout_seconds) {
    throw Error("upload attempt for step " + std::to_string(step) +
                " timed out after " +
                std::to_string(opts_.attempt_timeout_seconds) + "s");
  }
}

void Uploader::throttle(double started, i64 bytes) {
  if (opts_.max_bytes_per_second <= 0 || bytes <= 0) return;
  // Pace the whole attempt: cumulative bytes may not outrun the cap.
  const double earliest =
      started + static_cast<double>(bytes) / opts_.max_bytes_per_second;
  const double wait = earliest - monotonic_seconds();
  if (wait <= 0) return;
  static auto& throttled_m =
      obs::MetricsRegistry::instance().counter("upload.throttled_seconds");
  const double t0 = monotonic_seconds();
  {
    // Interruptible by shutdown so the destructor is never held behind a
    // bandwidth-cap sleep.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::duration<double>(wait),
                 [&] { return stop_; });
    stats_.throttled_seconds += monotonic_seconds() - t0;
  }
  throttled_m.add(monotonic_seconds() - t0);
}

void Uploader::copy_file(const std::string& from, const std::string& to,
                         bool allow_torn) {
  if (auto injector = io_fault_injector()) {
    const auto fault =
        injector->before_io(comm::IoPath::kUpload, opts_.owner_rank);
    if (fault.fail || fault.unreadable) throw Error(fault.reason);
    if (fault.torn) {
      // Land a truncated copy before failing — the realistic shape of an
      // interrupted transfer. Verification must catch it.
      if (allow_torn) {
        std::ifstream in(from, std::ios::binary | std::ios::ate);
        GEOFM_CHECK(in.good(), "cannot open " + from);
        const std::streamsize half = in.tellg() / 2;
        std::vector<char> bytes(static_cast<std::size_t>(half));
        in.seekg(0);
        in.read(bytes.data(), half);
        std::ofstream out(to, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), half);
      }
      throw Error(fault.reason);
    }
  }
  std::error_code ec;
  fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
  if (ec) {
    throw Error("cannot copy " + from + " to " + to + ": " + ec.message());
  }
}

void Uploader::upload_once(i64 step) {
  const double started = monotonic_seconds();
  const fs::path src = fs::path(opts_.source) / format::step_dir_name(step);
  const format::Manifest manifest = format::read_manifest(src.string());

  const fs::path dst_tmp =
      fs::path(opts_.destination) /
      ("." + format::step_dir_name(step) + ".tmp");
  const fs::path dst_final =
      fs::path(opts_.destination) / format::step_dir_name(step);
  std::error_code ec;
  fs::remove_all(dst_tmp, ec);
  fs::create_directories(dst_tmp, ec);
  if (ec) {
    throw Error("cannot create " + dst_tmp.string() + ": " + ec.message());
  }

  i64 bytes = 0;
  for (const std::string& shard : manifest.shards) {
    check_deadline(started, step);
    const fs::path from = src / shard;
    copy_file(from.string(), (dst_tmp / shard).string(),
              /*allow_torn=*/true);
    std::error_code sz_ec;
    bytes += static_cast<i64>(fs::file_size(from, sz_ec));
    throttle(started, bytes);
  }
  // The manifest lands last, mirroring the primary write protocol: a temp
  // dir without one is visibly incomplete.
  check_deadline(started, step);
  copy_file((src / "manifest.txt").string(),
            (dst_tmp / "manifest.txt").string(), /*allow_torn=*/false);

  if (opts_.verify_checksums) {
    obs::TraceScope verify_span("upload.verify", "upload", "step", step);
    const format::Manifest arrived = format::read_manifest(dst_tmp.string());
    GEOFM_CHECK(arrived.step == step && arrived.shards == manifest.shards,
                "uploaded manifest does not match the source for step " +
                    std::to_string(step));
    for (const std::string& shard : arrived.shards) {
      check_deadline(started, step);
      const std::string path = (dst_tmp / shard).string();
      const format::ShardHeader header = format::read_shard_header(path);
      for (const format::ShardIndexEntry& entry : header.records) {
        format::read_shard_record(path, entry);  // throws on bad checksum
      }
    }
  }

  fs::remove_all(dst_final, ec);
  fs::rename(dst_tmp, dst_final, ec);
  if (ec) {
    throw Error("cannot publish upload " + dst_final.string() + ": " +
                ec.message());
  }
  std::ofstream latest(fs::path(opts_.destination) / "LATEST",
                       std::ios::trunc);
  latest << format::step_dir_name(step) << "\n";

  auto& reg = obs::MetricsRegistry::instance();
  static auto& up_bytes = reg.counter("upload.bytes");
  static auto& up_seconds = reg.histogram("upload.seconds");
  up_bytes.add(static_cast<double>(bytes));
  up_seconds.observe(monotonic_seconds() - started);
}

void Uploader::run() {
  set_thread_rank(opts_.owner_rank);
  obs::set_thread_label("ckpt.uploader");
  auto& reg = obs::MetricsRegistry::instance();
  static auto& attempts_m = reg.counter("upload.attempts");
  static auto& retries_m = reg.counter("upload.retries");
  static auto& failures_m = reg.counter("upload.failures");
  static auto& gave_up_m = reg.counter("upload.gave_up");
  static auto& uploaded_m = reg.counter("upload.checkpoints");

  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return !queue_.empty() || stop_; });
    if (stop_) return;
    current_ = queue_.front();
    queue_.pop_front();
    const i64 step = current_;

    bool done = false;
    for (int attempt = 0; attempt < opts_.max_retries && !done; ++attempt) {
      if (attempt > 0) {
        // Exponential backoff with deterministic jitter (util/backoff,
        // shared with the serving tier's reload circuit breaker): the
        // schedule is a pure function of (seed, step, attempt), so
        // fault-injected runs replay bitwise. The wait is interruptible
        // by stop_ so the destructor is never held behind a backoff
        // sleep.
        const double backoff = backoff_seconds(
            {opts_.initial_backoff_seconds, opts_.max_backoff_seconds,
             opts_.backoff_jitter, opts_.seed},
            static_cast<u64>(step), attempt);
        stats_.retries += 1;
        retries_m.add(1);
        // Timeline marker (run-health report): mirroring is struggling.
        obs::trace_instant("upload.retry", "upload");
        if (cv_.wait_for(lk, std::chrono::duration<double>(backoff),
                         [&] { return stop_; })) {
          break;
        }
      }
      stats_.attempts += 1;
      attempts_m.add(1);
      lk.unlock();
      std::string failure;
      {
        obs::TraceScope span("upload.checkpoint", "upload", "step", step,
                             "attempt", attempt);
        try {
          upload_once(step);
          done = true;
        } catch (const std::exception& e) {
          failure = e.what();
        }
      }
      lk.lock();
      if (!done) {
        stats_.failures += 1;
        failures_m.add(1);
        GEOFM_WARN("upload of step " << step << " attempt " << attempt + 1
                                     << "/" << opts_.max_retries
                                     << " failed: " << failure);
      }
    }

    if (done) {
      stats_.uploaded += 1;
      uploaded_m.add(1);
      newest_uploaded_ = std::max(newest_uploaded_, step);
    } else if (!stop_) {
      // Graceful degradation: training is never held hostage by the
      // secondary location. The gap is loud (metric + warning) and the
      // next published checkpoint gets a fresh set of attempts.
      stats_.gave_up += 1;
      gave_up_m.add(1);
      obs::trace_instant("upload.gave_up", "upload");
      GEOFM_WARN("giving up on uploading step "
                 << step << " after " << opts_.max_retries << " attempts");
    }
    current_ = -1;
    cv_.notify_all();
    if (stop_) return;
  }
}

// ----- publication hook + GC protection --------------------------------------

void notify_checkpoint_published(const std::string& root, i64 step) {
  obs::TraceScope span("upload.exposed", "upload", "step", step);
  std::lock_guard<std::mutex> lk(g_registry_mu);
  auto it = registry().find(canonical_or_self(root));
  if (it == registry().end()) return;
  it->second->enqueue(step);
}

bool uploader_protects(const std::string& root, i64 step) {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  auto it = registry().find(canonical_or_self(root));
  if (it == registry().end()) return false;
  return it->second->protects(step);
}

}  // namespace geofm::ckpt
