#include "ckpt/io_fault.hpp"

#include <mutex>

#include "comm/fault.hpp"

namespace geofm::ckpt {

namespace {

std::mutex g_io_fault_mu;
std::shared_ptr<comm::FaultInjector>& io_fault_slot() {
  static auto* slot = new std::shared_ptr<comm::FaultInjector>();
  return *slot;
}

}  // namespace

void install_io_fault_injector(
    std::shared_ptr<comm::FaultInjector> injector) {
  std::lock_guard<std::mutex> lk(g_io_fault_mu);
  io_fault_slot() = std::move(injector);
}

std::shared_ptr<comm::FaultInjector> io_fault_injector() {
  std::lock_guard<std::mutex> lk(g_io_fault_mu);
  return io_fault_slot();
}

}  // namespace geofm::ckpt
