#include "ckpt/format.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace geofm::ckpt::format {
namespace {

namespace fs = std::filesystem;

void append_u64(std::string& out, u64 v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_i64(std::string& out, i64 v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_str(std::string& out, const std::string& s) {
  append_u64(out, s.size());
  out.append(s);
}

/// Byte size `append_str` produces.
std::size_t str_size(const std::string& s) { return 8 + s.size(); }

u64 read_u64(std::ifstream& in, const std::string& path) {
  u64 v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in.good()) throw Error("shard file truncated: " + path);
  return v;
}

i64 read_i64(std::ifstream& in, const std::string& path) {
  return static_cast<i64>(read_u64(in, path));
}

std::string read_str(std::ifstream& in, const std::string& path) {
  const u64 len = read_u64(in, path);
  if (len > 1u << 20) throw Error("implausible string length in " + path);
  std::string s(static_cast<std::size_t>(len), '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in.good()) throw Error("shard file truncated: " + path);
  return s;
}

/// Atomic publish: write `bytes` to a temp sibling of `path`, rename over.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);  // racy-safe: recheck
    if (ec && !fs::exists(target.parent_path())) {
      throw Error("cannot create directory " +
                  target.parent_path().string() + ": " + ec.message());
    }
  }
  const fs::path tmp =
      target.parent_path() / ("." + target.filename().string() + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) throw Error("cannot open " + tmp.string());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) throw Error("write failed: " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    throw Error("cannot publish " + target.string() + ": " + ec.message());
  }
}

}  // namespace

u64 fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  u64 h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void write_shard_file(const std::string& path, const ShardData& shard) {
  // Pass 1: header size, so record data offsets are absolute.
  std::size_t header = 8 * 4;  // magic, version, rank, world
  header += 8;
  for (const auto& [name, value] : shard.counters) {
    (void)value;
    header += str_size(name) + 8;
  }
  header += 8;
  for (const auto& [name, state] : shard.rng_streams) {
    (void)state;
    header += str_size(name) + 8;
  }
  header += 8;
  for (const ShardRecord& r : shard.records) {
    header += str_size(r.name) + 8 + 8 * r.shape.size() + 8 + 8 + 8 + 8;
  }

  std::string out;
  append_u64(out, kShardMagic);
  append_u64(out, kVersion);
  append_u64(out, static_cast<u64>(shard.rank));
  append_u64(out, static_cast<u64>(shard.world));
  append_u64(out, shard.counters.size());
  for (const auto& [name, value] : shard.counters) {
    append_str(out, name);
    append_i64(out, value);
  }
  append_u64(out, shard.rng_streams.size());
  for (const auto& [name, state] : shard.rng_streams) {
    append_str(out, name);
    append_u64(out, state);
  }
  append_u64(out, shard.records.size());
  u64 data_offset = header;
  for (const ShardRecord& r : shard.records) {
    GEOFM_CHECK(r.len >= 0 && r.begin >= 0 && r.data != nullptr,
                "bad shard record " << r.name);
    append_str(out, r.name);
    append_u64(out, r.shape.size());
    for (i64 d : r.shape) append_i64(out, d);
    append_i64(out, r.begin);
    append_i64(out, r.len);
    append_u64(out, data_offset);
    const std::size_t bytes = static_cast<std::size_t>(r.len) * sizeof(float);
    append_u64(out, fnv1a(r.data, bytes));
    data_offset += bytes;
  }
  GEOFM_CHECK(out.size() == header, "shard header size accounting is off");
  for (const ShardRecord& r : shard.records) {
    out.append(reinterpret_cast<const char*>(r.data),
               static_cast<std::size_t>(r.len) * sizeof(float));
  }
  write_file_atomic(path, out);
}

ShardHeader read_shard_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw Error("cannot open checkpoint shard: " + path);
  if (read_u64(in, path) != kShardMagic) {
    throw Error("not a geofm checkpoint shard: " + path);
  }
  const u64 version = read_u64(in, path);
  if (version != kVersion) {
    throw Error("unsupported checkpoint version " + std::to_string(version) +
                " in " + path);
  }
  ShardHeader h;
  h.rank = static_cast<int>(read_u64(in, path));
  h.world = static_cast<int>(read_u64(in, path));
  const u64 n_counters = read_u64(in, path);
  for (u64 i = 0; i < n_counters; ++i) {
    std::string name = read_str(in, path);
    h.counters[std::move(name)] = read_i64(in, path);
  }
  const u64 n_rng = read_u64(in, path);
  for (u64 i = 0; i < n_rng; ++i) {
    std::string name = read_str(in, path);
    h.rng_streams[std::move(name)] = read_u64(in, path);
  }
  const u64 n_records = read_u64(in, path);
  if (n_records > 1u << 24) throw Error("implausible record count in " + path);
  h.records.reserve(static_cast<std::size_t>(n_records));
  for (u64 i = 0; i < n_records; ++i) {
    ShardIndexEntry e;
    e.name = read_str(in, path);
    const u64 n_dims = read_u64(in, path);
    if (n_dims > 16) throw Error("implausible tensor rank in " + path);
    e.shape.reserve(static_cast<std::size_t>(n_dims));
    for (u64 d = 0; d < n_dims; ++d) e.shape.push_back(read_i64(in, path));
    e.begin = read_i64(in, path);
    e.len = read_i64(in, path);
    e.data_offset = read_u64(in, path);
    e.checksum = read_u64(in, path);
    if (e.begin < 0 || e.len < 0) {
      throw Error("malformed record range for " + e.name + " in " + path);
    }
    h.records.push_back(std::move(e));
  }
  return h;
}

std::vector<float> read_shard_record(const std::string& path,
                                     const ShardIndexEntry& entry) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw Error("cannot open checkpoint shard: " + path);
  in.seekg(static_cast<std::streamoff>(entry.data_offset));
  std::vector<float> data(static_cast<std::size_t>(entry.len));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in.good()) {
    throw Error("shard record " + entry.name + " truncated in " + path);
  }
  if (fnv1a(data.data(), data.size() * sizeof(float)) != entry.checksum) {
    throw Error("checksum mismatch for " + entry.name + " in " + path +
                " (corrupted shard)");
  }
  return data;
}

std::string shard_file_name(int rank) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%05d.bin", rank);
  return buf;
}

std::string step_dir_name(i64 step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "step_%08lld",
                static_cast<long long>(step));
  return buf;
}

void write_manifest(const std::string& dir, const Manifest& manifest) {
  std::ostringstream os;
  os << "geofm-checkpoint v" << kVersion << "\n";
  os << "step " << manifest.step << "\n";
  os << "world " << manifest.world << "\n";
  for (const std::string& s : manifest.shards) os << "shard " << s << "\n";
  write_file_atomic((fs::path(dir) / "manifest.txt").string(), os.str());
}

Manifest read_manifest(const std::string& dir) {
  const std::string path = (fs::path(dir) / "manifest.txt").string();
  std::ifstream in(path);
  if (!in.good()) {
    throw Error("not a complete checkpoint (no manifest): " + dir);
  }
  std::string header;
  std::getline(in, header);
  if (header != "geofm-checkpoint v" + std::to_string(kVersion)) {
    throw Error("unrecognized manifest header in " + path);
  }
  Manifest m;
  std::string key;
  while (in >> key) {
    if (key == "step") {
      in >> m.step;
    } else if (key == "world") {
      in >> m.world;
    } else if (key == "shard") {
      std::string name;
      in >> name;
      m.shards.push_back(std::move(name));
    } else {
      throw Error("unrecognized manifest entry '" + key + "' in " + path);
    }
  }
  if (m.world <= 0 || static_cast<int>(m.shards.size()) != m.world) {
    throw Error("manifest shard count does not match world in " + path);
  }
  return m;
}

}  // namespace geofm::ckpt::format
