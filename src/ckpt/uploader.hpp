// Retrying background checkpoint uploader: streams published checkpoints
// to a secondary location while training continues.
//
// The paper's runs drain checkpoints off-node (Lustre -> archival
// storage) so a node-local disk loss cannot cost the campaign; this is
// the in-process analogue. An `Uploader` watches one checkpoint root:
// whenever the save path publishes `step_N/` there, the publication hook
// (`notify_checkpoint_published`, called from the Checkpointer's publish
// path) enqueues the step and returns immediately — training never
// blocks on upload. A background thread then mirrors the step directory
// to `destination`:
//
//   queued -> copying (to a hidden `.step_N.tmp/` under the destination)
//          -> verifying (re-reads every shard record at the destination
//             and checks its FNV-1a checksum — corruption in transit is
//             caught before the copy is trusted)
//          -> published (atomic rename to `step_N/`, destination LATEST
//             updated)
//
// Any failure — injected via the io-fault seam (`IoPath::kUpload`), a
// real filesystem error, a checksum mismatch at verify, or a per-attempt
// timeout — discards the temp dir and retries with exponential backoff
// and deterministic jitter, up to `max_retries` attempts. Exhausting the
// attempts *degrades gracefully*: the step is recorded in
// `stats().gave_up` and the `upload.gave_up` metric, a log line fires,
// and the uploader moves on to the next queued step.
//
// Retention integration: `apply_retention` (checkpoint.cpp) consults
// `uploader_protects(root, step)` before dooming a step directory, so GC
// never deletes a checkpoint that is queued, mid-upload, or the newest
// one the secondary location is known to hold (the recovery anchor if
// the primary root is lost).
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "util/common.hpp"

namespace geofm::ckpt {

struct UploaderOptions {
  std::string source;       // checkpoint root to mirror (registered)
  std::string destination;  // secondary location; empty = uploads disabled
  int owner_rank = 0;       // rank whose trace track the uploader joins
  int max_retries = 5;      // attempts per checkpoint before giving up
  double initial_backoff_seconds = 0.05;
  double max_backoff_seconds = 2.0;
  double backoff_jitter = 0.5;  // backoff scaled by [1-j, 1+j) per retry
  double attempt_timeout_seconds = 30.0;  // wall clock per attempt
  bool verify_checksums = true;
  u64 seed = 0x5eedULL;  // jitter stream (deterministic backoff schedule)
  // Bytes/second cap on mirror copies; 0 = unthrottled. Mirroring shares
  // the filesystem with the checkpoint writer and the serving tier's
  // reload path — an unthrottled bulk copy can starve both. The pacing
  // is file-granular (sleep after each shard until the attempt's
  // cumulative bytes fit the rate), interruptible by shutdown, and the
  // slept time is counted in `stats().throttled_seconds` and the
  // `upload.throttled_seconds` metric. Throttle sleeps count against
  // `attempt_timeout_seconds`; size the two together.
  double max_bytes_per_second = 0;

  bool enabled() const { return !destination.empty(); }
};

struct UploaderStats {
  i64 uploaded = 0;   // checkpoints verified + published at destination
  i64 attempts = 0;   // upload attempts started
  i64 retries = 0;    // attempts after the first, per checkpoint
  i64 failures = 0;   // failed attempts (each retried or given up)
  i64 gave_up = 0;    // checkpoints abandoned after max_retries
  i64 newest_uploaded_step = -1;
  double throttled_seconds = 0;  // slept under the bandwidth cap
};

class Uploader {
 public:
  /// Registers for `opts.source` (one uploader per root) and starts the
  /// background thread. Requires `opts.enabled()`.
  explicit Uploader(UploaderOptions opts);
  /// Unregisters, finishes the in-flight attempt (not the whole queue),
  /// and joins. Call drain() first to guarantee the queue is flushed.
  ~Uploader();

  Uploader(const Uploader&) = delete;
  Uploader& operator=(const Uploader&) = delete;

  /// Queues `step_<step>/` under the source root for upload. Never
  /// blocks; duplicates and already-uploaded steps are dropped.
  void enqueue(i64 step);

  /// Blocks until the queue is empty and no upload is in flight (given-up
  /// checkpoints count as drained).
  void drain();

  /// True while `step` must survive retention GC: queued, mid-upload, or
  /// the newest step verified at the destination.
  bool protects(i64 step) const;

  i64 newest_uploaded_step() const;
  UploaderStats stats() const;

 private:
  void run();
  void upload_once(i64 step);  // one attempt; throws on failure
  void copy_file(const std::string& from, const std::string& to,
                 bool allow_torn);
  void check_deadline(double started, i64 step) const;
  /// Sleeps (interruptibly) until `bytes` copied since `started` fit
  /// under max_bytes_per_second. No-op when unthrottled or stopping.
  void throttle(double started, i64 bytes);

  const UploaderOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<i64> queue_;
  i64 current_ = -1;  // step mid-upload, -1 if idle
  i64 newest_uploaded_ = -1;
  UploaderStats stats_;
  bool stop_ = false;
  std::thread worker_;
};

/// Publication hook: called by the checkpoint publish path after
/// `step_N/` lands under `root`. Enqueues on the uploader registered for
/// `root`, if any; otherwise a no-op. Never blocks on IO.
void notify_checkpoint_published(const std::string& root, i64 step);

/// True if an uploader registered for `root` currently protects `step`
/// (see Uploader::protects). Retention GC skips protected steps.
bool uploader_protects(const std::string& root, i64 step);

}  // namespace geofm::ckpt
