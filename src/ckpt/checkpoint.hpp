// Fault-tolerant checkpoint/restart: sharded save, async snapshots, and
// elastic restore.
//
// Saving. Every training rank owns a Checkpointer and calls save() at a
// step boundary with its StateDesc (state.hpp) plus the run's counters
// and RNG streams. save() *stages* the described slices into host-side
// buffers (trace span `ckpt.snapshot` — the only exposed cost) and, in
// async mode, hands them to a background writer thread that serializes,
// checksums, and writes the shard (`ckpt.write`, hidden behind training
// compute); sync mode writes inline. Shards land in a hidden
// `.tmp_<stepdir>/` under the checkpoint root; an in-process coordinator
// keyed by (canonical root, step) lets the last-arriving writer publish
// the checkpoint — write manifest.txt, rename the temp dir to
// `step_NNNNNNNN/`, update `LATEST` — so a crash at any point leaves
// either the previous complete checkpoint or the new one, never a
// half-written hybrid. A save() issued while the previous write is still
// in flight blocks until it drains (`ckpt.stall`).
//
// Restoring. CheckpointReader accepts a shard file, a step directory, or
// a checkpoint root (resolved to its latest complete step). restore()
// assembles each requested slice from the stored ranges via plan_reads()
// regardless of the world size or sharding strategy that wrote them —
// the elastic-reshard path — verifying shapes (first mismatch reported
// by name), coverage, and per-record checksums.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/state.hpp"
#include "util/common.hpp"

namespace geofm::ckpt {

/// Bounded on-disk retention. After each publication the publishing rank
/// keeps the `keep_last` highest complete steps plus every step divisible
/// by `keep_multiple_of` (0 = no such anchors), and garbage-collects the
/// rest — atomically: a doomed `step_N/` is first renamed to a hidden
/// `.gc_step_N.tmp/` (unpublishing it in one filesystem op) and then
/// deleted, so readers racing the GC see either a complete checkpoint or
/// none, never a partial one. Disabled by default (`keep_last == 0`
/// keeps everything).
struct RetentionPolicy {
  i64 keep_last = 0;
  i64 keep_multiple_of = 0;

  bool enabled() const { return keep_last > 0; }
};

/// One rank's contribution to a directory checkpoint.
struct SaveRequest {
  std::string dir;  // checkpoint root directory
  i64 step = 0;
  int rank = 0;
  int world = 1;
  StateDesc state;  // slices alias live tensors; copied during save()
  std::map<std::string, i64> counters;     // step, epoch, seed, optim.*
  std::map<std::string, u64> rng_streams;  // named Rng states
  RetentionPolicy retention;  // applied after this save publishes
  // Degrade instead of die: a failed shard write (disk error, injected
  // IO fault) is logged and counted (`ckpt.save_failures`) and the step
  // simply never publishes — training continues and the next save gets a
  // fresh try. Off by default: an unexpected write failure surfaces on
  // the next save()/wait_idle() like any async error.
  bool tolerate_failures = false;
};

/// Per-rank checkpoint writer. Thread-compatible (one owner thread calls
/// save()/wait_idle(); the internal writer thread is managed privately).
class Checkpointer {
 public:
  /// `async` = stage at the call site, write on a background thread.
  explicit Checkpointer(bool async = true);
  /// Drains any in-flight write (absorbing its error, which was already
  /// reported if anyone called wait_idle()).
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Stages `req` and (a)synchronously writes this rank's shard. Blocks
  /// first if a previous async write is still in flight. Rethrows a
  /// previous async write's failure.
  void save(const SaveRequest& req);

  /// Blocks until no write is in flight; rethrows an async failure.
  void wait_idle();

 private:
  struct Staged {
    std::string dir;
    i64 step = 0;
    format::ShardData shard;
    RetentionPolicy retention;
    bool tolerate = false;
    // Owns the floats the shard's records point into.
    std::vector<std::vector<float>> buffers;
  };

  Staged stage(const SaveRequest& req);
  static void write_staged(const Staged& staged);
  void writer_loop(int owner_rank);

  const bool async_;
  std::thread writer_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<Staged> pending_;  // handed to the writer thread
  bool busy_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
};

/// Clears in-process save-rendezvous state for `root` and deletes any
/// leftover temporary step directories under it. Drivers call this once
/// per rank at startup, before the first save: a previous run that died
/// mid-save leaves a partial rendezvous and a hidden temp dir behind,
/// and without the reset a later run re-saving the same step could
/// publish a checkpoint mixing shards from both runs. Idempotent and
/// safe to call concurrently from every rank (no save may be in flight).
void reset_save_state(const std::string& root);

/// Applies `policy` to the complete checkpoints under `root` (the
/// publishing Checkpointer rank calls this after each publication;
/// exposed for tests and offline tools). Returns the steps removed, in
/// ascending order. No-op when the policy is disabled.
std::vector<i64> apply_retention(const std::string& root,
                                 const RetentionPolicy& policy);

/// Writes a complete single-rank checkpoint to `path` as one shard file
/// (atomically). The legacy train::save_checkpoint API and single-process
/// tools use this; the result is readable by CheckpointReader like any
/// directory checkpoint.
void save_file(const std::string& path, const StateDesc& state,
               const std::map<std::string, i64>& counters = {},
               const std::map<std::string, u64>& rng_streams = {});

/// A complete (manifest-bearing) published checkpoint under a root.
struct PublishedManifest {
  i64 step = -1;
  std::string dir;  // "<root>/step_NNNNNNNN"

  bool found() const { return step >= 0; }
};

/// The newest complete checkpoint under `root` — the manifest-discovery
/// primitive shared by the serving tier's reload poller, the elastic
/// supervisor's resume, and latest_step()/resolve_checkpoint(). Returns a
/// not-found result (step -1) when the root is missing or holds no
/// complete step. The LATEST pointer is a convenience for humans — this
/// scan is authoritative.
PublishedManifest latest_published_manifest(const std::string& root);

/// latest_published_manifest(root).step; -1 if none.
i64 latest_step(const std::string& root);

/// A published checkpoint located across an *ordered* source list —
/// primary publish directory first, then mirrors (e.g. the uploader's
/// destination). `source` is the index into the scanned list.
struct PublishedSource {
  i64 step = -1;
  std::string dir;  // "<sources[source]>/step_NNNNNNNN"
  std::size_t source = 0;

  bool found() const { return step >= 0; }
};

/// Scans every source with latest_published_manifest and returns the
/// complete candidates sorted newest-step-first, ties broken toward the
/// earlier (more trusted) source. Missing or empty sources contribute
/// nothing. Callers — the serving tier's reload path, the elastic
/// supervisor's resume — try candidates in order until one restores:
/// that is the checkpoint-source failover protocol, and it is why a
/// dead primary root no longer takes the consumers of its checkpoints
/// down with it.
std::vector<PublishedSource> published_sources(
    const std::vector<std::string>& sources);

/// Full integrity pass over a published step directory: manifest
/// readable, every shard header parses, every record's FNV-1a checksum
/// verifies. Throws geofm::Error naming the first problem. The serving
/// tier runs this before trusting a *mirror* manifest (the primary's
/// publication protocol already guarantees completeness; a mirror may
/// have been written by an interrupted copy), and tools can use it to
/// audit a root offline. Reads go through the io-fault seam like any
/// restore.
void verify_checkpoint_dir(const std::string& dir);

/// Resolves `path` — a shard file, a step directory, or a checkpoint
/// root — to a loadable checkpoint (file or step directory). Throws
/// geofm::Error if nothing complete is found.
std::string resolve_checkpoint(const std::string& path);

class CheckpointReader {
 public:
  /// Opens `path` (resolved via resolve_checkpoint) and reads every
  /// shard's header and record index; payloads load lazily on restore().
  explicit CheckpointReader(const std::string& path);

  /// The resolved file or step directory backing this reader.
  const std::string& location() const { return location_; }
  /// World size the checkpoint was written at.
  int saved_world() const { return world_; }

  bool has_counter(const std::string& name) const;
  i64 counter(const std::string& name, i64 fallback) const;
  bool has_rng_stream(const std::string& name) const;
  /// Throws geofm::Error if the stream was not saved.
  u64 rng_state(const std::string& name) const;

  /// Assembles every slice of `desc` from the stored ranges, verifying
  /// shapes (the first mismatching tensor is reported by name), range
  /// coverage, and record checksums. Elastic: the description's layout
  /// need not match the layout the checkpoint was written with.
  void restore(const StateDesc& desc);

 private:
  struct StoredPart {
    std::size_t file = 0;  // index into files_
    format::ShardIndexEntry entry;
    std::shared_ptr<std::vector<float>> data;  // lazy, checksum-verified
  };
  struct StoredTensor {
    std::vector<i64> shape;
    std::vector<StoredPart> parts;
  };

  const float* part_data(StoredPart& part);

  std::string location_;
  std::vector<std::string> files_;
  int world_ = 1;
  std::map<std::string, i64> counters_;
  std::map<std::string, u64> rng_;
  std::map<std::string, StoredTensor> tensors_;
};

/// Restores optimizer scalar counters ("optim.<name>") saved by
/// optimizer_scalars() into the live optimizer. Missing counters are an
/// error only if the optimizer expects them.
void restore_optimizer_scalars(const CheckpointReader& reader,
                               optim::Optimizer& optimizer);

}  // namespace geofm::ckpt
