// Elastic-reshard planning: pure range algebra over logical tensors.
//
// A checkpoint stores each logical tensor as the union of contiguous
// flattened ranges, one set per writing rank (format.hpp). A restoring
// rank needs some range of its own — the whole tensor in replicated
// modes, its local FSDP shard slice otherwise — and the two layouts need
// not agree: the checkpoint may have been written at a different world
// size or sharding strategy. plan_reads() bridges them: given the stored
// ranges, it computes the minimal deterministic copy list that assembles
// the requested range, and rejects (throws) a request the checkpoint
// cannot cover. Everything downstream (which files to touch, how many
// bytes move) follows from this plan.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace geofm::ckpt {

/// A contiguous range of a logical tensor's flattened elements.
struct Range {
  i64 begin = 0;
  i64 len = 0;
};

/// One copy in a reshard plan: take `len` elements starting `src_offset`
/// into stored range `source`, and place them `dst_offset` elements into
/// the requested range.
struct RangeCopy {
  std::size_t source = 0;
  i64 src_offset = 0;
  i64 dst_offset = 0;
  i64 len = 0;

  bool operator==(const RangeCopy&) const = default;
};

/// Plans the assembly of [begin, begin+len) from `stored` ranges. The
/// plan is deterministic (independent of `stored` order): at every point
/// the covering range that extends furthest is chosen, ties broken by
/// lowest source index, so copies are as few as possible. Overlapping
/// stored ranges are fine (they hold identical data by construction).
/// Throws geofm::Error if any element of the request is not covered.
std::vector<RangeCopy> plan_reads(const std::vector<Range>& stored, i64 begin,
                                  i64 len);

}  // namespace geofm::ckpt
