// On-disk checkpoint format (version 2): sharded, checksummed, atomic.
//
// A checkpoint is either
//   * one *shard file* (the single-rank / legacy API), or
//   * a *checkpoint directory* `step_NNNNNNNN/` holding one shard file per
//     saving rank plus a `manifest.txt`, under a user-chosen root that
//     also carries a `LATEST` convenience pointer.
//
// Shard files store *logical tensors*: every record names a model (or
// optimizer-slot) tensor by its full name and shape, and covers one
// contiguous [begin, begin+len) range of the tensor's flattened elements.
// A rank writes exactly the ranges it owns, so FSDP checkpoints are
// written shard-local without ever materializing the full model, and a
// loader reassembles whatever ranges *it* needs from whatever ranks
// wrote — the basis of elastic resharding (see reshard.hpp). Each shard
// also embeds the run's integer counters (step, epoch, ...) and named RNG
// stream states, so any single shard is enough to recover them.
//
// Shard file layout (all integers native-endian, like PyTorch's pickles —
// checkpoints are not portable across endianness):
//
//   u64 magic ("GFMCKPT2")      u64 version
//   u64 rank                    u64 world
//   u64 n_counters   { u64 name_len, bytes, i64 value }*
//   u64 n_rng        { u64 name_len, bytes, u64 state }*
//   u64 n_records    { u64 name_len, bytes, u64 n_dims, i64 dims[],
//                      i64 begin, i64 len, u64 data_offset, u64 fnv1a }*
//   raw float data, at the absolute offsets recorded in the index
//
// Every record's payload carries an FNV-1a-64 checksum verified on read.
// Writers always write to a temporary name in the destination directory
// and rename into place, so a crash never leaves a half-written file
// where a reader looks.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace geofm::ckpt::format {

inline constexpr u64 kShardMagic = 0x47464d434b505432ULL;  // "GFMCKPT2"
inline constexpr u64 kVersion = 2;

/// FNV-1a 64-bit over `n` bytes.
u64 fnv1a(const void* data, std::size_t n);

/// One logical-tensor range staged for writing. `data` must stay valid
/// until write_shard_file returns.
struct ShardRecord {
  std::string name;
  std::vector<i64> shape;  // full logical shape of the named tensor
  i64 begin = 0;           // first flattened element this record covers
  i64 len = 0;             // covered elements
  const float* data = nullptr;
};

/// Everything one rank contributes to a checkpoint.
struct ShardData {
  int rank = 0;
  int world = 1;
  std::map<std::string, i64> counters;
  std::map<std::string, u64> rng_streams;
  std::vector<ShardRecord> records;
};

/// A record as described by a shard file's index (payload not loaded).
struct ShardIndexEntry {
  std::string name;
  std::vector<i64> shape;
  i64 begin = 0;
  i64 len = 0;
  u64 data_offset = 0;
  u64 checksum = 0;
};

struct ShardHeader {
  int rank = 0;
  int world = 1;
  std::map<std::string, i64> counters;
  std::map<std::string, u64> rng_streams;
  std::vector<ShardIndexEntry> records;
};

/// Serializes `shard` to `path` atomically (write temp sibling, fsync-free
/// rename into place). Throws geofm::Error on I/O failure.
void write_shard_file(const std::string& path, const ShardData& shard);

/// Parses a shard file's header + record index. Throws geofm::Error on a
/// bad magic, truncation, or malformed metadata.
ShardHeader read_shard_header(const std::string& path);

/// Loads one record's float payload and verifies its checksum. Throws
/// geofm::Error on truncation or checksum mismatch (corruption).
std::vector<float> read_shard_record(const std::string& path,
                                     const ShardIndexEntry& entry);

// ----- checkpoint-directory protocol ---------------------------------------

/// "shard_00003.bin" for rank 3.
std::string shard_file_name(int rank);
/// "step_00000042" for step 42.
std::string step_dir_name(i64 step);

struct Manifest {
  i64 step = 0;
  int world = 1;
  std::vector<std::string> shards;  // file names relative to the dir
};

/// Writes `<dir>/manifest.txt` (atomically). The manifest is the
/// completion marker: a step directory without one is not a checkpoint.
void write_manifest(const std::string& dir, const Manifest& manifest);

/// Reads `<dir>/manifest.txt`. Throws geofm::Error if missing/malformed.
Manifest read_manifest(const std::string& dir);

}  // namespace geofm::ckpt::format
