#include "ckpt/reshard.hpp"

#include <algorithm>
#include <sstream>

namespace geofm::ckpt {

std::vector<RangeCopy> plan_reads(const std::vector<Range>& stored, i64 begin,
                                  i64 len) {
  GEOFM_CHECK(begin >= 0 && len >= 0, "bad requested range");
  std::vector<RangeCopy> plan;
  if (len == 0) return plan;

  // Sort candidates by begin (stable index ties) once; walk a cursor.
  std::vector<std::size_t> order(stored.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (stored[a].begin != stored[b].begin) {
      return stored[a].begin < stored[b].begin;
    }
    return a < b;
  });

  const i64 want_end = begin + len;
  i64 cursor = begin;
  std::size_t scan = 0;  // first candidate not yet ruled out by the cursor
  while (cursor < want_end) {
    // Among ranges starting at or before the cursor, pick the one that
    // extends furthest past it.
    i64 best_end = cursor;
    std::size_t best = stored.size();
    for (std::size_t i = scan; i < order.size(); ++i) {
      const Range& r = stored[order[i]];
      if (r.begin > cursor) break;
      const i64 end = r.begin + r.len;
      if (end > best_end || (end == best_end && best != stored.size() &&
                             order[i] < best)) {
        if (end > cursor) {
          best_end = end;
          best = order[i];
        }
      }
    }
    if (best == stored.size()) {
      std::ostringstream os;
      os << "checkpoint does not cover range [" << begin << ", " << want_end
         << "): gap at element " << cursor;
      throw Error(os.str());
    }
    const i64 take = std::min(best_end, want_end) - cursor;
    plan.push_back({best, cursor - stored[best].begin, cursor - begin, take});
    cursor += take;
    // Candidates wholly behind the cursor can never win again.
    while (scan < order.size() &&
           stored[order[scan]].begin + stored[order[scan]].len <= cursor) {
      ++scan;
    }
  }
  return plan;
}

}  // namespace geofm::ckpt
