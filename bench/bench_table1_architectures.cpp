// Reproduces paper Table I: the ViT architecture variants and their
// parameter counts, computed analytically from the configs and checked
// against the values the paper reports.
#include "bench_common.hpp"
#include "models/config.hpp"

using namespace geofm;

int main() {
  bench::banner("Table I — ViT model architectures",
                "Tsaris et al., Table I (Sec. III-A)");

  // Paper-reported parameter counts [M].
  const long long paper_m[] = {87, 635, 914, 3067, 5349, 14720};

  TextTable t({"Model", "Width", "Depth", "MLP", "Heads", "Patch",
               "Params[M] (ours)", "Params[M] (paper)", "delta"});
  const auto variants = models::table1_variants();
  for (size_t i = 0; i < variants.size(); ++i) {
    const auto& cfg = variants[i];
    const double ours = static_cast<double>(cfg.param_count()) / 1e6;
    const double delta = ours / static_cast<double>(paper_m[i]) - 1.0;
    t.add_row({cfg.name, fmt_i(cfg.width), fmt_i(cfg.depth),
               fmt_i(cfg.mlp_dim), fmt_i(cfg.heads), fmt_i(cfg.patch_size),
               fmt_f(ours, 0), fmt_i(paper_m[i]),
               fmt_f(100.0 * delta, 1) + "%"});
  }
  t.print();
  std::printf(
      "note: ViT-5B's Table I config (w=1792,d=56,mlp=15360) yields ~3.8B\n"
      "parameters under standard ViT accounting; the paper's 5349M is not\n"
      "reachable from its stated hyper-parameters (see EXPERIMENTS.md).\n");
  bench::save_csv(t, "table1");
  return 0;
}
