// Reproduces paper Fig. 6: top-1 and top-5 linear-probing accuracy as a
// function of probe training epoch, for the four model scales on all four
// classification datasets.
#include "bench_common.hpp"
#include "bench_downstream_common.hpp"

using namespace geofm;

int main() {
  bench::banner(
      "Figure 6 — linear-probe accuracy vs epoch, 4 models x 4 datasets",
      "Tsaris et al., Fig. 6 (Sec. V-C)");

  auto proxies = bench::pretrained_proxies();
  auto datasets = bench::probe_datasets();
  auto grid = bench::probe_grid(proxies);

  for (size_t d = 0; d < datasets.size(); ++d) {
    std::printf("\n--- %s: top-1 (top-5) by probe epoch ---\n",
                datasets[d].name().c_str());
    std::vector<std::string> header{"Epoch"};
    for (const auto& p : proxies) header.push_back(p.cfg.name);
    TextTable t(header);
    const size_t n = grid[0][d].top1_per_epoch.size();
    for (size_t e = 0; e < n; ++e) {
      if (n > 10 && (e + 1) % 5 != 0 && e != 0) continue;
      std::vector<std::string> row{fmt_i(static_cast<long long>(e + 1))};
      for (size_t m = 0; m < proxies.size(); ++m) {
        row.push_back(fmt_f(100 * grid[m][d].top1_per_epoch[e], 1) + " (" +
                      fmt_f(100 * grid[m][d].top5_per_epoch[e], 1) + ")");
      }
      t.add_row(std::move(row));
    }
    t.print();
    bench::save_csv(t, "fig6_" + datasets[d].name());
  }

  std::printf(
      "shape checks (paper Fig. 6): top-1 improves with model scale on\n"
      "every dataset; gains appear within the first probing epochs; top-5\n"
      "follows the same ordering.\n");
  return 0;
}
