// Reproduces paper Fig. 2: ViT-5B on 8 nodes — throughput for three
// sharding strategies (FULL_SHARD, SHARD_GRAD_OP, HYBRID_2GPUs) across
// backward-prefetch modes and the limit_all_gathers rate limiter.
#include "bench_common.hpp"
#include "models/config.hpp"
#include "sim/simulator.hpp"

using namespace geofm;
using namespace geofm::sim;
using parallel::BackwardPrefetch;
using parallel::ShardingStrategy;

int main() {
  bench::banner("Figure 2 — FSDP communication configs, ViT-5B on 8 nodes",
                "Tsaris et al., Fig. 2 (Sec. IV-B)");

  const auto workload = vit_step_workload(models::vit_5b(), 32);
  const MachineSpec machine = frontier();

  struct StratCase {
    ShardingStrategy s;
    int group;
    const char* label;
  };
  const StratCase strategies[] = {
      {ShardingStrategy::kFullShard, 1, "FULL_SHARD"},
      {ShardingStrategy::kShardGradOp, 1, "SHARD_GRAD_OP"},
      {ShardingStrategy::kHybridShard, 2, "HYBRID_2GPUs"},
  };
  const std::pair<BackwardPrefetch, const char*> prefetches[] = {
      {BackwardPrefetch::kNone, "None"},
      {BackwardPrefetch::kBackwardPost, "BACKWARD_POST"},
      {BackwardPrefetch::kBackwardPre, "BACKWARD_PRE"},
  };

  TextTable t({"Strategy", "Prefetch", "limit_all_gathers", "ips"});
  double best = 0;
  std::string best_label;
  for (const auto& sc : strategies) {
    for (const auto& [pf, pf_name] : prefetches) {
      for (bool limit : {false, true}) {
        ParallelPlan plan;
        plan.fsdp.strategy = sc.s;
        plan.fsdp.hybrid_group_size = sc.group;
        plan.fsdp.prefetch = pf;
        plan.fsdp.limit_all_gathers = limit;
        TrainingSimulator sim(workload, machine, 8, plan);
        const double ips = sim.simulate_step().images_per_second_total;
        t.add_row({sc.label, pf_name, limit ? "on" : "off", fmt_f(ips, 0)});
        if (ips > best) {
          best = ips;
          best_label = std::string(sc.label) + " + " + pf_name +
                       (limit ? " + limit" : "");
        }
      }
    }
  }
  t.print();
  std::printf(
      "best config: %s (%.0f ips)\n"
      "shape checks (paper Sec. IV-B): BACKWARD_PRE >= BACKWARD_POST >=\n"
      "None, and limit_all_gathers improves throughput — the paper fixes\n"
      "BACKWARD_PRE + limit_all_gathers for all later experiments, as do\n"
      "our Fig. 3/4 benches.\n",
      best_label.c_str(), best);
  bench::save_csv(t, "fig2");
  return 0;
}
