// Ablation: how much of FSDP's throughput comes from compute/communication
// overlap — prefetch modes, the all-gather rate limiter, and a
// no-overlap counterfactual (DESIGN.md design-decision #1/#2).
//
// Two views of the same question:
//   1. modeled  — the Frontier simulator at paper scale (ViT-5B, 8 nodes);
//   2. measured — the functional async runtime on 4 thread ranks, reporting
//      the exposed-wait vs hidden-communication split the nonblocking
//      engine actually achieved, plus the in-flight gather peak that
//      limit_all_gathers caps.
#include <mutex>

#include "bench_common.hpp"
#include "comm/communicator.hpp"
#include "models/config.hpp"
#include "models/mae.hpp"
#include "parallel/fsdp.hpp"
#include "sim/simulator.hpp"

using namespace geofm;
using namespace geofm::sim;
using parallel::BackwardPrefetch;
using parallel::ShardingStrategy;

namespace {

struct Measured {
  double exposed_ms = 0;
  double overlapped_ms = 0;
  int completed_before_wait = 0;
  int waits = 0;
  int peak_inflight = 0;
};

// Trains a proxy MAE for a few steps on 4 thread ranks under the given
// overlap knobs and returns rank 0's accumulated wait accounting.
Measured measure_functional(BackwardPrefetch pf, bool limit) {
  constexpr int kRanks = 4;
  const int steps = bench::quick_mode() ? 2 : 4;
  Measured out;
  std::mutex mu;
  comm::run_ranks(kRanks, [&](comm::Communicator& c) {
    Rng rng(1);
    models::MAE mae(models::mae_for(models::proxy_base()), rng);
    parallel::FsdpOptions opts;
    opts.strategy = ShardingStrategy::kFullShard;
    opts.prefetch = pf;
    opts.limit_all_gathers = limit;
    parallel::Fsdp fsdp(mae, c, opts);

    Rng data_rng(100 + static_cast<u64>(c.rank()));
    Tensor batch = Tensor::randn({2, 3, 32, 32}, data_rng, 0.5f);
    for (int s = 0; s < steps; ++s) {
      Rng mask_rng(static_cast<u64>(50 + s));
      fsdp.begin_step();
      mae.forward(batch, mask_rng, 0);
      mae.backward();
      fsdp.end_backward();
      if (s == 0) continue;  // warm-up step: first-touch noise
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        const auto& st = fsdp.last_step_stats();
        out.exposed_ms += 1e3 * st.exposed_wait_seconds;
        out.overlapped_ms += 1e3 * st.overlapped_seconds();
        out.completed_before_wait += st.completed_before_wait;
        out.waits += st.waits;
        out.peak_inflight =
            std::max(out.peak_inflight, fsdp.peak_inflight_gathers());
      }
    }
    c.barrier();
  });
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation — overlap machinery (prefetch, rate limiter)",
                "supports paper Sec. IV-B/IV-E observations");

  const auto workload = vit_step_workload(models::vit_5b(), 32);
  const MachineSpec machine = frontier();
  const int nodes = 8;

  TextTable t({"Config", "ips", "exposed comm [ms]", "comm busy [ms]"});
  auto run = [&](const char* label, BackwardPrefetch pf, bool limit,
                 double contention) {
    ParallelPlan plan;
    plan.fsdp.strategy = ShardingStrategy::kFullShard;
    plan.fsdp.prefetch = pf;
    plan.fsdp.limit_all_gathers = limit;
    MachineSpec m = machine;
    m.comm_compute_contention = contention;
    TrainingSimulator sim(workload, m, nodes, plan);
    const auto step = sim.simulate_step();
    t.add_row({label, fmt_f(step.images_per_second_total, 0),
               fmt_f(1e3 * step.exposed_comm_seconds, 1),
               fmt_f(1e3 * step.comm_seconds, 1)});
  };

  run("BACKWARD_PRE + limiter (paper's pick)", BackwardPrefetch::kBackwardPre,
      true, machine.comm_compute_contention);
  run("BACKWARD_POST + limiter", BackwardPrefetch::kBackwardPost, true,
      machine.comm_compute_contention);
  run("no prefetch + limiter", BackwardPrefetch::kNone, true,
      machine.comm_compute_contention);
  run("BACKWARD_PRE, limiter off", BackwardPrefetch::kBackwardPre, false,
      machine.comm_compute_contention);
  run("BACKWARD_PRE, zero-contention hardware (counterfactual)",
      BackwardPrefetch::kBackwardPre, true, 0.0);
  t.print();
  std::printf(
      "takeaway: prefetch ordering controls how much gather time hides\n"
      "behind backward compute; the zero-contention row bounds what ideal\n"
      "overlap could buy on hardware where comm kernels were free.\n");
  bench::save_csv(t, "ablation_overlap");

  std::printf("\nmeasured — functional async runtime, FULL_SHARD on 4 thread "
              "ranks (proxy ViT-Base MAE):\n");
  TextTable m({"Config", "exposed [ms]", "hidden [ms]", "done@wait",
               "peak in-flight"});
  auto measured_row = [&](const char* label, BackwardPrefetch pf, bool limit) {
    const Measured r = measure_functional(pf, limit);
    m.add_row({label, fmt_f(r.exposed_ms, 2), fmt_f(r.overlapped_ms, 2),
               fmt_f(100.0 * r.completed_before_wait /
                         std::max(1, r.waits), 0) + "%",
               std::to_string(r.peak_inflight)});
  };
  measured_row("BACKWARD_PRE + limiter", BackwardPrefetch::kBackwardPre, true);
  measured_row("BACKWARD_POST + limiter", BackwardPrefetch::kBackwardPost,
               true);
  measured_row("no prefetch + limiter", BackwardPrefetch::kNone, true);
  measured_row("BACKWARD_PRE, limiter off", BackwardPrefetch::kBackwardPre,
               false);
  m.print();
  std::printf(
      "takeaway: on thread ranks the collective executes on the last rank\n"
      "to join, so \"done@wait\" (collectives already complete when waited)\n"
      "and hidden-vs-exposed milliseconds are direct measurements of the\n"
      "overlap the nonblocking engine achieved; the limiter bounds the\n"
      "in-flight gather peak at %d.\n",
      parallel::kAllGatherInflightCap);
  std::printf(
      "hint: rerun with GEOFM_TRACE=overlap.json to see the same waits as\n"
      "per-rank \"comm.exposed\" spans on a Perfetto timeline.\n");
  bench::save_csv(m, "ablation_overlap_measured");
  return 0;
}
