// Ablation: how much of FSDP's throughput comes from compute/communication
// overlap — prefetch modes, the all-gather rate limiter, and a
// no-overlap counterfactual (DESIGN.md design-decision #1/#2).
#include "bench_common.hpp"
#include "models/config.hpp"
#include "sim/simulator.hpp"

using namespace geofm;
using namespace geofm::sim;
using parallel::BackwardPrefetch;
using parallel::ShardingStrategy;

int main() {
  bench::banner("Ablation — overlap machinery (prefetch, rate limiter)",
                "supports paper Sec. IV-B/IV-E observations");

  const auto workload = vit_step_workload(models::vit_5b(), 32);
  const MachineSpec machine = frontier();
  const int nodes = 8;

  TextTable t({"Config", "ips", "exposed comm [ms]", "comm busy [ms]"});
  auto run = [&](const char* label, BackwardPrefetch pf, bool limit,
                 double contention) {
    ParallelPlan plan;
    plan.fsdp.strategy = ShardingStrategy::kFullShard;
    plan.fsdp.prefetch = pf;
    plan.fsdp.limit_all_gathers = limit;
    MachineSpec m = machine;
    m.comm_compute_contention = contention;
    TrainingSimulator sim(workload, m, nodes, plan);
    const auto step = sim.simulate_step();
    t.add_row({label, fmt_f(step.images_per_second_total, 0),
               fmt_f(1e3 * step.exposed_comm_seconds, 1),
               fmt_f(1e3 * step.comm_seconds, 1)});
  };

  run("BACKWARD_PRE + limiter (paper's pick)", BackwardPrefetch::kBackwardPre,
      true, machine.comm_compute_contention);
  run("BACKWARD_POST + limiter", BackwardPrefetch::kBackwardPost, true,
      machine.comm_compute_contention);
  run("no prefetch + limiter", BackwardPrefetch::kNone, true,
      machine.comm_compute_contention);
  run("BACKWARD_PRE, limiter off", BackwardPrefetch::kBackwardPre, false,
      machine.comm_compute_contention);
  run("BACKWARD_PRE, zero-contention hardware (counterfactual)",
      BackwardPrefetch::kBackwardPre, true, 0.0);
  t.print();
  std::printf(
      "takeaway: prefetch ordering controls how much gather time hides\n"
      "behind backward compute; the zero-contention row bounds what ideal\n"
      "overlap could buy on hardware where comm kernels were free.\n");
  bench::save_csv(t, "ablation_overlap");
  return 0;
}
