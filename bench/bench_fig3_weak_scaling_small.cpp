// Reproduces paper Fig. 3: weak scaling of the four ViT variants that fit
// on a single Frontier GPU (Base/Huge/1B/3B) under DDP, NO_SHARD,
// HYBRID_1GPU, HYBRID_2GPUs and FULL_SHARD, plus the per-GPU memory
// footprint panels.
#include "bench_common.hpp"
#include "models/config.hpp"
#include "sim/simulator.hpp"

using namespace geofm;
using namespace geofm::sim;
using parallel::ShardingStrategy;

namespace {

struct Plan {
  const char* label;
  ParallelPlan plan;
};

std::vector<Plan> plans() {
  std::vector<Plan> out;
  ParallelPlan ddp;
  ddp.kind = ParallelPlan::Kind::kDdp;
  out.push_back({"DDP", ddp});
  ParallelPlan ns;
  ns.fsdp.strategy = ShardingStrategy::kNoShard;
  out.push_back({"NO_SHARD", ns});
  ParallelPlan h1;
  h1.fsdp.strategy = ShardingStrategy::kHybridShard;
  h1.fsdp.hybrid_group_size = 1;
  out.push_back({"HYBRID_1GPU", h1});
  ParallelPlan h2 = h1;
  h2.fsdp.hybrid_group_size = 2;
  out.push_back({"HYBRID_2GPUs", h2});
  ParallelPlan fs;
  fs.fsdp.strategy = ShardingStrategy::kFullShard;
  out.push_back({"FULL_SHARD", fs});
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 3 — weak scaling, ViT-Base/Huge/1B/3B (fit on 1 GPU)",
                "Tsaris et al., Fig. 3 (Sec. IV-C)");

  const MachineSpec machine = frontier();
  const std::vector<int> nodes = {1, 2, 4, 8, 16, 32, 64};
  const auto variants = {models::vit_base(), models::vit_huge(),
                         models::vit_1b(), models::vit_3b()};

  for (const auto& cfg : variants) {
    const auto workload = vit_step_workload(cfg, 32);
    std::printf("\n--- %s, local batch 32, images/second ---\n",
                cfg.name.c_str());
    std::vector<std::string> header{"Strategy"};
    for (int n : nodes) header.push_back("n=" + std::to_string(n));
    header.push_back("ideal@64");
    TextTable t(header);
    for (const auto& p : plans()) {
      std::vector<std::string> row{p.label};
      double one_node = 0;
      for (int n : nodes) {
        TrainingSimulator sim(workload, machine, n, p.plan);
        const double ips = sim.simulate_step().images_per_second_total;
        if (n == 1) one_node = ips;
        row.push_back(fmt_f(ips, 0));
      }
      row.push_back(fmt_f(one_node * 64, 0));
      t.add_row(std::move(row));
    }
    t.print();
    bench::save_csv(t, "fig3_ips_" + cfg.name);
  }

  std::printf("\n--- per-GPU memory [GB] at 8 nodes (FULL_SHARD varies with "
              "world size; others constant) ---\n");
  TextTable mem({"Model", "DDP/NO_SHARD", "HYBRID_2GPUs", "FULL_SHARD@1n",
                 "FULL_SHARD@8n", "FULL_SHARD@64n"});
  for (const auto& cfg : variants) {
    const auto workload = vit_step_workload(cfg, 32);
    auto gb = [&](const ParallelPlan& p, int n) {
      TrainingSimulator sim(workload, machine, n, p);
      return fmt_f(sim.memory_footprint().total() / double(1ull << 30), 1);
    };
    ParallelPlan ns;
    ns.fsdp.strategy = ShardingStrategy::kNoShard;
    ParallelPlan h2;
    h2.fsdp.strategy = ShardingStrategy::kHybridShard;
    h2.fsdp.hybrid_group_size = 2;
    ParallelPlan fs;
    fs.fsdp.strategy = ShardingStrategy::kFullShard;
    mem.add_row({cfg.name, gb(ns, 8), gb(h2, 8), gb(fs, 1), gb(fs, 8),
                 gb(fs, 64)});
  }
  mem.print();
  std::printf(
      "shape checks (paper Sec. IV-C): HYBRID_1GPU >= NO_SHARD >\n"
      "HYBRID_2GPUs and all FSDP modes > DDP, with the DDP gap growing\n"
      "with model size; FULL_SHARD leads only at small scale and flattens\n"
      "earlier for smaller models; ViT-3B NO_SHARD uses >50 GB while\n"
      "HYBRID_2GPUs halves sharded state and FULL_SHARD drops to a few GB.\n");
  bench::save_csv(mem, "fig3_memory");
  return 0;
}
