// Reproduces paper Fig. 1: weak scaling of MAE ViT-3B pretraining
// (512x512 inputs, local batch 32, NO_SHARD, 4 dataloader workers/GPU) —
// real vs synthetic vs synthetic-no-comm vs IO vs ideal, 1 to 64 nodes.
#include "bench_common.hpp"
#include "models/config.hpp"
#include "sim/simulator.hpp"
#include "util/chart.hpp"

using namespace geofm;
using namespace geofm::sim;

int main() {
  bench::banner("Figure 1 — MAE ViT-3B weak scaling on Frontier",
                "Tsaris et al., Fig. 1 (Sec. IV-A)");

  auto enc = models::vit_3b();
  enc.img_size = 512;   // paper pretrains at 512x512
  enc.patch_size = 16;  // 512 must divide by the patch
  const auto workload = mae_step_workload(models::mae_for(enc), 32);

  ParallelPlan plan;
  plan.fsdp.strategy = parallel::ShardingStrategy::kNoShard;
  const auto points =
      weak_scaling(workload, frontier(), {1, 2, 4, 8, 16, 32, 64}, plan);

  TextTable t({"Nodes", "real [ips]", "syn [ips]", "syn no comm [ips]",
               "IO [ips]", "ideal [ips]", "comm share"});
  for (const auto& p : points) {
    t.add_row({fmt_i(p.nodes), fmt_f(p.real_ips, 0), fmt_f(p.syn_ips, 0),
               fmt_f(p.syn_no_comm_ips, 0), fmt_f(p.io_ips, 0),
               fmt_f(p.ideal_ips, 0), fmt_f(100 * p.comm_fraction, 1) + "%"});
  }
  t.print();

  AsciiChart::Options co;
  co.log_x = co.log_y = true;
  co.x_label = "nodes";
  co.y_label = "images/second";
  AsciiChart chart(co);
  std::vector<double> xs, real, syn, nc, io, ideal;
  for (const auto& p : points) {
    xs.push_back(p.nodes);
    real.push_back(p.real_ips);
    syn.push_back(p.syn_ips);
    nc.push_back(p.syn_no_comm_ips);
    io.push_back(p.io_ips);
    ideal.push_back(p.ideal_ips);
  }
  chart.add_series("real", xs, real);
  chart.add_series("syn", xs, syn);
  chart.add_series("syn no comm", xs, nc);
  chart.add_series("IO", xs, io);
  chart.add_series("ideal", xs, ideal);
  chart.print();

  std::printf(
      "shape checks (paper Sec. IV-A): IO > syn at every scale with a\n"
      "widening gap; syn-no-comm > syn; communication share grows to\n"
      "~%.0f%% at 64 nodes (paper: ~22%%) => compute/communication bound,\n"
      "never IO bound.\n",
      100 * points.back().comm_fraction);
  bench::save_csv(t, "fig1");
  return 0;
}
