// Reproduces paper Fig. 5: MAE pretraining loss vs steps for the four
// model scales, identical hyper-parameters (functional training of the
// proxy ladder; checkpoints cached for Fig. 6 / Table III).
#include "bench_common.hpp"
#include "bench_downstream_common.hpp"

using namespace geofm;

int main() {
  bench::banner("Figure 5 — MAE pretraining loss vs steps, four model scales",
                "Tsaris et al., Fig. 5 (Sec. V-B)");

  auto proxies = bench::pretrained_proxies();

  // Epoch-level loss table (the paper plots per-step curves; we print the
  // epoch means and dump full step curves to CSV).
  std::vector<std::string> header{"Epoch"};
  for (const auto& p : proxies) header.push_back(p.cfg.name);
  TextTable t(header);
  const size_t n_epochs = proxies.front().epoch_losses.size();
  for (size_t e = 0; e < n_epochs; ++e) {
    if (n_epochs > 12 && e % 3 != 0 && e + 1 != n_epochs) continue;
    std::vector<std::string> row{fmt_i(static_cast<long long>(e + 1))};
    for (const auto& p : proxies) {
      row.push_back(fmt_f(p.epoch_losses[e], 4));
    }
    t.add_row(std::move(row));
  }
  t.print();

  std::printf("final-epoch losses: ");
  for (const auto& p : proxies) {
    std::printf("%s=%.4f  ", p.cfg.name.c_str(), p.epoch_losses.back());
  }
  std::printf(
      "\nshape checks (paper Fig. 5): larger models reach equal or lower\n"
      "reconstruction loss than smaller ones under identical\n"
      "hyper-parameters. At proxy scale the loss gaps are small (the\n"
      "reconstruction task saturates), while the downstream gaps in\n"
      "Fig. 6 / Table III remain large — see EXPERIMENTS.md.\n");
  bench::save_csv(t, "fig5");
  return 0;
}
