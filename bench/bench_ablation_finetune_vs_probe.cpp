// Ablation: adaptation protocol — linear probing vs partial vs full
// fine-tuning, from the same pretrained checkpoint. The paper (Sec. II &
// V) motivates probing because fine-tuning saturates; at proxy scale we
// can measure the full protocol spectrum and its trainable-parameter
// budgets.
#include "bench_common.hpp"
#include "bench_downstream_common.hpp"
#include "train/finetune.hpp"

using namespace geofm;

int main() {
  bench::banner("Ablation — linear probe vs fine-tuning protocols",
                "extends paper Sec. II evaluation-protocol discussion");

  // Reuse the cached Fig-5/6 pretraining if present.
  auto proxies = bench::pretrained_proxies();
  auto& proxy = proxies[2];  // ViT-1B-proxy: mid-ladder
  auto ds = data::ucm(32, bench::quick_mode() ? data::DatasetScale{3}
                                              : data::DatasetScale{1});

  TextTable t({"Protocol", "trainable params", "UCM top-1 (%)",
               "UCM top-5 (%)"});

  {
    train::ProbeConfig probe;
    probe.epochs = bench::quick_mode() ? 10 : 40;
    probe.batch_size = 64;
    probe.base_lr = 0.8;
    probe.seed = 3;
    auto r = train::linear_probe(*proxy.mae, ds, probe);
    const i64 head = proxy.cfg.width * ds.n_classes() + ds.n_classes();
    t.add_row({"linear probe (LARS, cached features)", fmt_i(head),
               fmt_f(100 * r.final_top1, 1), fmt_f(100 * r.final_top5, 1)});
  }

  struct ModeCase {
    train::FinetuneMode mode;
    int top_blocks;
    const char* label;
  };
  const ModeCase modes[] = {
      {train::FinetuneMode::kHeadOnly, 0, "head-only fine-tune (AdamW)"},
      {train::FinetuneMode::kTopBlocks, 2, "top-2-blocks fine-tune"},
      {train::FinetuneMode::kFull, 0, "full fine-tune"},
  };
  for (const auto& mc : modes) {
    Rng rng(11);
    models::ViTEncoder vit(proxy.cfg, rng, ds.n_classes());
    train::init_vit_from_mae(vit, *proxy.mae);
    train::FinetuneConfig cfg;
    cfg.mode = mc.mode;
    cfg.top_blocks = mc.top_blocks;
    cfg.epochs = bench::quick_mode() ? 4 : 12;
    cfg.batch_size = 64;
    cfg.base_lr = 2e-3;
    cfg.seed = 13;
    auto r = train::finetune(vit, ds, cfg);
    t.add_row({mc.label, fmt_i(r.trainable_params),
               fmt_f(100 * r.final_top1, 1), fmt_f(100 * r.final_top5, 1)});
    std::printf("[%s done]\n", mc.label);
    std::fflush(stdout);
  }
  t.print();
  std::printf(
      "takeaway: fine-tuning spends orders of magnitude more trainable\n"
      "parameters; probing isolates pretrained-feature quality, which is\n"
      "why the paper's scale comparison uses it.\n");
  bench::save_csv(t, "ablation_finetune_vs_probe");
  return 0;
}
