// Reproduces paper Table III: final top-1 linear-probing accuracy for the
// four model scales across UCM / AID / NWPU / MillionAID, including the
// paper's own numbers for side-by-side comparison.
#include "bench_common.hpp"
#include "bench_downstream_common.hpp"

using namespace geofm;

int main() {
  bench::banner("Table III — linear probing top-1 accuracy (%)",
                "Tsaris et al., Table III (Sec. V-C)");

  auto proxies = bench::pretrained_proxies();
  auto datasets = bench::probe_datasets();
  auto grid = bench::probe_grid(proxies);

  // Paper values (100-epoch pretraining rows of Table III).
  const double paper[4][4] = {
      // UCM    AID    NWPU   MillionAID
      {40.62, 41.72, 42.40, 41.31},  // ViT-Base
      {50.00, 60.78, 57.24, 53.28},  // ViT-Huge
      {57.10, 68.89, 64.35, 59.14},  // ViT-1B
      {74.05, 79.96, 76.43, 72.98},  // ViT-3B
  };

  TextTable t({"Model", "UCM (TR=50%)", "AID (TR=20%)", "NWPU (TR=10%)",
               "MillionAID", "mean", "paper mean"});
  double base_mean = 0, top_mean = 0;
  for (size_t m = 0; m < proxies.size(); ++m) {
    std::vector<std::string> row{proxies[m].cfg.name};
    double mean = 0, pmean = 0;
    for (size_t d = 0; d < datasets.size(); ++d) {
      row.push_back(fmt_f(100 * grid[m][d].final_top1, 1));
      mean += 100 * grid[m][d].final_top1;
      pmean += paper[m][d];
    }
    mean /= static_cast<double>(datasets.size());
    pmean /= static_cast<double>(datasets.size());
    row.push_back(fmt_f(mean, 1));
    row.push_back(fmt_f(pmean, 1));
    t.add_row(std::move(row));
    if (m == 0) base_mean = mean;
    if (m + 1 == proxies.size()) top_mean = mean;
  }
  t.print();
  std::printf(
      "Base-proxy -> 3B-proxy mean top-1 gain: %+.1f points (paper, at\n"
      "full scale: ~+30 points). Shape check: accuracy increases\n"
      "monotonically with model scale on the dataset mean, reproducing\n"
      "the paper's headline finding at proxy scale.\n",
      top_mean - base_mean);
  bench::save_csv(t, "table3");
  return 0;
}
