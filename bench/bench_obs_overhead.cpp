// Observability overhead micro-bench: what does watching a run cost?
//
// Three configurations of the same distributed pretraining workload:
//   off        tracing disabled, no sampler (the baseline)
//   trace      tracing enabled (every span the run emits is recorded)
//   telemetry  tracing + the 10 Hz background sampler writing JSONL
//
// plus the hot-path primitives in isolation: a disabled TraceScope (one
// relaxed load + branch), an enabled TraceScope (two clock reads + a
// ring-buffer store), and a full flight-recorder capture (trace + metrics
// snapshot — the abort-path cost, paid once per failure).
//
// Prints a table and writes <cache>/BENCH_obs.json — the regression
// anchor for the observability stack; the span budget gate enforces the
// sampler share (`telemetry.sample`) on every CI run.
#include <algorithm>
#include <filesystem>

#include "bench_common.hpp"
#include "geofm.hpp"

using namespace geofm;

namespace {

double run_workload(int steps, const std::string& telemetry_dir) {
  auto corpus = data::million_aid_pretrain(128, 16);
  train::DistributedPretrainConfig cfg;
  cfg.steps = steps;
  cfg.global_batch = 16;
  cfg.lr = 1e-3;
  cfg.seed = 17;
  cfg.loader_workers = 0;
  cfg.verbose = false;

  if (!telemetry_dir.empty()) {
    obs::telemetry::TelemetryOptions topts;
    topts.dir = telemetry_dir;
    topts.interval_seconds = 0.1;  // the production 10 Hz shape
    obs::telemetry::start(topts);
  }
  const double t0 = monotonic_seconds();
  comm::run_ranks(2, [&](comm::Communicator& c) {
    models::ViTConfig enc{.name = "bench", .width = 32, .depth = 4,
                          .mlp_dim = 64, .heads = 4, .img_size = 16,
                          .patch_size = 4, .in_channels = 3};
    Rng rng(3);
    models::MAE mae(models::mae_for(enc), rng);
    parallel::FsdpOptions opts;
    opts.strategy = parallel::ShardingStrategy::kFullShard;
    parallel::Fsdp fsdp(mae, c, opts);
    train::pretrain_mae_distributed(mae, fsdp, c, corpus, cfg);
  });
  const double elapsed = monotonic_seconds() - t0;
  if (!telemetry_dir.empty()) obs::telemetry::stop();
  return elapsed;
}

double scope_cost_ns(int iters_total) {
  // Batches sized under the ring capacity, cleared between: the enabled
  // measurement must time the record path, never the overflow-drop path.
  auto& r = obs::TraceRecorder::instance();
  const int batch = 32768;
  double total = 0;
  for (int done = 0; done < iters_total; done += batch) {
    const int n = std::min(batch, iters_total - done);
    r.clear();
    const double t0 = monotonic_seconds();
    for (int i = 0; i < n; ++i) {
      obs::TraceScope s("bench.obs.scope", "bench");
    }
    total += monotonic_seconds() - t0;
  }
  return total / iters_total * 1e9;
}

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const double t = fn();
    if (i == 0 || t < best) best = t;
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("observability overhead",
                "tracing / telemetry / flight-recorder cost (repo §obs)");
  const int steps = bench::quick_mode() ? 6 : 20;
  const int scope_iters = bench::quick_mode() ? 200000 : 2000000;
  auto& recorder = obs::TraceRecorder::instance();

  // --- hot-path primitives ---------------------------------------------------
  recorder.disable();
  recorder.clear();
  const double scope_off_ns = scope_cost_ns(scope_iters);
  recorder.enable();
  const double scope_on_ns = scope_cost_ns(scope_iters);

  // Flight capture: the once-per-failure abort-path cost with a loaded
  // trace buffer (the scope loop above filled this thread's track).
  auto& flight = obs::FlightRecorder::instance();
  flight.enable(256);
  const double cap0 = monotonic_seconds();
  flight.capture_now("bench capture");
  const double capture_ms = (monotonic_seconds() - cap0) * 1e3;
  flight.discard();
  flight.disable();
  recorder.disable();
  recorder.clear();

  // --- end-to-end workload ---------------------------------------------------
  // Best-of-N per configuration: run-to-run scheduling noise on a small
  // workload dwarfs single-digit-percent overheads.
  const int reps = bench::quick_mode() ? 2 : 3;
  const std::string tdir = "/tmp/geofm_bench_obs_telemetry";
  std::filesystem::remove_all(tdir);
  run_workload(steps, "");  // warm-up: page in weights/data paths once
  const double base_s = best_of(reps, [&] { return run_workload(steps, ""); });
  recorder.enable();
  recorder.clear();
  const double trace_s = best_of(reps, [&] {
    recorder.clear();
    return run_workload(steps, "");
  });
  const double telem_s = best_of(reps, [&] {
    recorder.clear();
    return run_workload(steps, tdir);
  });
  recorder.disable();
  recorder.clear();
  std::filesystem::remove_all(tdir);

  const double trace_frac = base_s > 0 ? trace_s / base_s - 1.0 : 0;
  const double telem_frac = base_s > 0 ? telem_s / base_s - 1.0 : 0;

  TextTable table({"case", "value", "unit"});
  table.add_row({"trace_scope disabled", fmt_f(scope_off_ns, 1), "ns/span"});
  table.add_row({"trace_scope enabled", fmt_f(scope_on_ns, 1), "ns/span"});
  table.add_row({"flight capture", fmt_f(capture_ms, 3), "ms"});
  table.add_row({"workload baseline", fmt_f(base_s, 3), "s"});
  table.add_row({"workload + trace", fmt_f(trace_s, 3), "s"});
  table.add_row({"workload + telemetry", fmt_f(telem_s, 3), "s"});
  table.add_row({"trace overhead", fmt_f(trace_frac * 100, 2), "%"});
  table.add_row({"telemetry overhead", fmt_f(telem_frac * 100, 2), "%"});
  std::printf("%s", table.to_string().c_str());

  std::string json = "{\n";
  json += "  \"trace_scope_disabled_ns\": " + fmt_f(scope_off_ns, 2) + ",\n";
  json += "  \"trace_scope_enabled_ns\": " + fmt_f(scope_on_ns, 2) + ",\n";
  json += "  \"flight_capture_ms\": " + fmt_f(capture_ms, 4) + ",\n";
  json += "  \"workload_steps\": " + std::to_string(steps) + ",\n";
  json += "  \"baseline_s\": " + fmt_f(base_s, 4) + ",\n";
  json += "  \"trace_s\": " + fmt_f(trace_s, 4) + ",\n";
  json += "  \"telemetry_s\": " + fmt_f(telem_s, 4) + ",\n";
  json += "  \"trace_overhead_frac\": " + fmt_f(trace_frac, 4) + ",\n";
  json += "  \"telemetry_overhead_frac\": " + fmt_f(telem_frac, 4) + "\n";
  json += "}\n";
  bench::save_csv(table, "BENCH_obs");
  const std::string json_path = bench::cache_dir() + "/BENCH_obs.json";
  write_file(json_path, json);
  std::printf("[saved %s]\n", json_path.c_str());
  return 0;
}
