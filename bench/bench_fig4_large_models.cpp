// Reproduces paper Fig. 4: weak scaling of ViT-5B (fits on 2 GPUs) and
// ViT-15B (needs 4 GPUs), memory by strategy, and the GPU power /
// utilization trace for the 32-node ViT-5B runs.
#include "bench_common.hpp"
#include "models/config.hpp"
#include "sim/simulator.hpp"

using namespace geofm;
using namespace geofm::sim;
using parallel::ShardingStrategy;

namespace {

struct Plan {
  std::string label;
  ParallelPlan plan;
};

Plan hybrid(int g) {
  Plan p;
  p.label = "HYBRID_" + std::to_string(g) + "GPUs";
  p.plan.fsdp.strategy = ShardingStrategy::kHybridShard;
  p.plan.fsdp.hybrid_group_size = g;
  return p;
}

Plan strategy(ShardingStrategy s, const char* label) {
  Plan p;
  p.label = label;
  p.plan.fsdp.strategy = s;
  return p;
}

}  // namespace

int main() {
  bench::banner("Figure 4 — ViT-5B and ViT-15B sharding strategies",
                "Tsaris et al., Fig. 4 (Sec. IV-D)");

  const MachineSpec machine = frontier();

  struct ModelCase {
    models::ViTConfig cfg;
    std::vector<int> groups;  // hybrid group sizes that fit
    int min_nodes;
  };
  const std::vector<ModelCase> cases = {
      {models::vit_5b(), {2, 4, 8, 16}, 1},
      {models::vit_15b(), {4, 8, 16}, 1},
  };
  const std::vector<int> nodes = {1, 2, 4, 8, 16, 32};

  for (const auto& mc : cases) {
    const auto workload = vit_step_workload(mc.cfg, 32);
    std::vector<Plan> plans;
    for (int g : mc.groups) plans.push_back(hybrid(g));
    plans.push_back(strategy(ShardingStrategy::kFullShard, "FULL_SHARD"));
    plans.push_back(
        strategy(ShardingStrategy::kShardGradOp, "SHARD_GRAD_OP"));

    std::printf("\n--- %s, local batch 32, images/second ---\n",
                mc.cfg.name.c_str());
    std::vector<std::string> header{"Strategy"};
    for (int n : nodes) header.push_back("n=" + std::to_string(n));
    TextTable t(header);
    for (const auto& p : plans) {
      std::vector<std::string> row{p.label};
      for (int n : nodes) {
        if (p.plan.fsdp.hybrid_group_size > n * machine.gpus_per_node) {
          row.push_back("-");
          continue;
        }
        TrainingSimulator sim(workload, machine, n, p.plan);
        row.push_back(fmt_f(sim.simulate_step().images_per_second_total, 0));
      }
      t.add_row(std::move(row));
    }
    t.print();
    bench::save_csv(t, "fig4_ips_" + mc.cfg.name);

    TextTable mem({"Strategy", "mem@8n [GB]", "mem@32n [GB]"});
    for (const auto& p : plans) {
      auto gb = [&](int n) {
        TrainingSimulator sim(workload, machine, n, p.plan);
        return fmt_f(sim.memory_footprint().total() / double(1ull << 30), 1);
      };
      mem.add_row({p.label, gb(8), gb(32)});
    }
    mem.print();
    bench::save_csv(mem, "fig4_memory_" + mc.cfg.name);
  }

  // Power / utilization trace, ViT-5B on 32 nodes (paper's rocm-smi panel).
  std::printf("\n--- ViT-5B @ 32 nodes: per-GCD power & utilization ---\n");
  const auto w5 = vit_step_workload(models::vit_5b(), 32);
  TextTable pw({"Strategy", "ips", "avg power [W]", "compute util",
                "comm util", "mem [GB]"});
  for (const auto& p :
       {hybrid(2), strategy(ShardingStrategy::kFullShard, "FULL_SHARD"),
        strategy(ShardingStrategy::kShardGradOp, "SHARD_GRAD_OP")}) {
    TrainingSimulator sim(w5, machine, 32, p.plan);
    const auto step = sim.simulate_step();
    const auto power = sim.power_draw();
    pw.add_row({p.label, fmt_f(step.images_per_second_total, 0),
                fmt_f(power.average_watts, 0),
                fmt_f(power.compute_utilization, 2),
                fmt_f(power.comm_utilization, 2),
                fmt_f(sim.memory_footprint().total() / double(1ull << 30),
                      1)});
  }
  pw.print();
  std::printf(
      "shape checks (paper Sec. IV-D): for ViT-5B, HYBRID_8/16 beat\n"
      "HYBRID_2/4 at scale; for ViT-15B SHARD_GRAD_OP scales best with\n"
      "FULL_SHARD competitive; SHARD_GRAD_OP draws more power than\n"
      "FULL_SHARD, consistent with its higher throughput (paper: 1509 vs\n"
      "1307 ips); SHARD_GRAD_OP memory sits between FULL_SHARD and the\n"
      "HYBRID modes.\n");
  bench::save_csv(pw, "fig4_power");
  return 0;
}
