// Ablation: DDP gradient-bucket size for ViT-3B at 32 nodes — why
// PyTorch's fixed 25 MB default ("constant message size", paper Sec. IV-C)
// falls behind FSDP's per-unit messages as the model grows, and how the
// choice trades per-call latency against overlap granularity.
#include "bench_common.hpp"
#include "models/config.hpp"
#include "sim/simulator.hpp"

using namespace geofm;
using namespace geofm::sim;

int main() {
  bench::banner("Ablation — DDP bucket size vs FSDP per-unit messages",
                "supports paper Sec. IV-C's DDP-vs-FSDP analysis");

  const auto workload = vit_step_workload(models::vit_3b(), 32);
  const MachineSpec machine = frontier();

  TextTable t({"Scheme", "message granularity", "ips@32n", "comm calls"});
  for (i64 mb : {1, 5, 25, 100, 400}) {
    ParallelPlan plan;
    plan.kind = ParallelPlan::Kind::kDdp;
    plan.ddp_bucket_bytes = mb * 1024 * 1024;
    TrainingSimulator sim(workload, machine, 32, plan);
    const auto step = sim.simulate_step();
    t.add_row({"DDP", fmt_i(mb) + " MB buckets",
               fmt_f(step.images_per_second_total, 0),
               fmt_i(step.comm_calls)});
  }
  ParallelPlan ns;
  ns.fsdp.strategy = parallel::ShardingStrategy::kNoShard;
  TrainingSimulator sim(workload, machine, 32, ns);
  const auto step = sim.simulate_step();
  t.add_row({"FSDP NO_SHARD", "one message per transformer block",
             fmt_f(step.images_per_second_total, 0),
             fmt_i(step.comm_calls)});
  t.print();
  std::printf(
      "takeaway: at 3B parameters the default 25 MB buckets mean hundreds\n"
      "of latency-bound calls; FSDP's per-block messages keep the\n"
      "balance between call time and message size (paper Sec. IV-C).\n");
  bench::save_csv(t, "ablation_ddp_bucket");
  return 0;
}
