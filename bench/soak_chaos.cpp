// Time-budgeted chaos soak: seeded campaigns through the full stack.
//
// Each campaign is one end-to-end scenario: `chaos::generate_campaign`
// draws a correlated multi-subsystem fault schedule (rank kills, stalls,
// torn/slow checkpoint IO, loader worker deaths, hung renders, poisoned
// samples), `train::run_elastic` runs a small MAE pretraining through it
// with a checkpoint mirror attached, a `serve::ModelServer` is then
// pointed at the publish roots and flooded per the campaign's overload
// schedule — and `chaos::check_invariants` audits the wreckage: futures
// conserved, publications atomic, recovery bounded and bitwise,
// postmortems present and replayable.
//
// The runner keeps starting campaigns (seed, seed+1, ...) until the
// wall-clock budget expires, so "soak longer" is one flag, and any
// violation is replayable from the printed campaign seed alone. Exit is
// nonzero iff any invariant was violated — CI-gateable.
//
//   soak_chaos [--seconds N] [--campaigns N] [--seed S]
//
//   --seconds    wall-clock budget; no new campaign starts after it
//                expires (default 60; at least one campaign always runs)
//   --campaigns  hard cap on campaigns (0 = budget-limited only)
//   --seed       base campaign seed (campaign i uses seed + i)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/invariants.hpp"
#include "ckpt/checkpoint.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "parallel/fsdp.hpp"
#include "serve/server.hpp"
#include "train/elastic.hpp"
#include "util/common.hpp"

namespace {

namespace fs = std::filesystem;
using geofm::i64;
using geofm::u64;

geofm::models::MaeConfig soak_mae_cfg() {
  geofm::models::ViTConfig enc{.name = "t", .width = 16, .depth = 3,
                               .mlp_dim = 32, .heads = 2, .img_size = 16,
                               .patch_size = 4, .in_channels = 3};
  return geofm::models::mae_for(enc);
}

geofm::train::ElasticConfig soak_elastic_config(const std::string& primary,
                                                const std::string& mirror) {
  geofm::train::ElasticConfig cfg;
  cfg.model = soak_mae_cfg();
  cfg.model_seed = 42;
  cfg.world = 4;
  cfg.fsdp.strategy = geofm::parallel::ShardingStrategy::kFullShard;
  cfg.train.steps = 8;
  cfg.train.global_batch = 12;  // divides 4, 3, and 2 — shrink-friendly
  cfg.train.lr = 1e-3;
  cfg.train.seed = 5;
  cfg.train.loader_workers = 2;  // loader faults need workers to kill
  cfg.train.verbose = false;
  cfg.train.checkpoint_every_n_steps = 3;
  cfg.train.checkpoint_dir = primary;
  cfg.train.async_checkpoint = false;
  // Injected IO faults must degrade the run, not kill it: a failed save
  // is skipped (counted), and the mirror keeps whatever last verified.
  cfg.train.tolerate_checkpoint_failures = true;
  cfg.train.upload.source = primary;
  cfg.train.upload.destination = mirror;
  cfg.train.upload.max_retries = 3;
  cfg.train.upload.initial_backoff_seconds = 0.01;
  cfg.train.upload.max_backoff_seconds = 0.05;
  return cfg;
}

/// Floods the serving tier per the campaign's overload schedule and
/// counts every issued/resolved future for the futures-conserved audit.
geofm::chaos::ServeAudit flood_server(const geofm::chaos::Campaign& campaign,
                                      const std::string& primary,
                                      const std::string& mirror) {
  namespace serve = geofm::serve;
  geofm::chaos::ServeAudit audit;

  serve::ServerConfig scfg;
  scfg.checkpoint_root = primary;
  scfg.checkpoint_sources = {primary, mirror};
  scfg.model = soak_mae_cfg();
  scfg.max_batch = 4;
  scfg.max_delay_us = 500;
  scfg.max_queue = 8;  // small on purpose: overload bursts must shed
  scfg.cache_capacity = 64;
  scfg.poll_interval_seconds = 0.02;
  scfg.allow_degraded_start = true;  // a fault-storm run may publish nothing
  scfg.tenant_weights = {{"soak-heavy", 3.0}, {"soak-light", 1.0}};
  serve::ModelServer server(scfg);

  const auto& e = scfg.model.encoder;
  // Requests carry a tenant (that is what fair-share arbitrates on), and
  // a tenant request without a registered head is a caller error — so
  // register a tiny probe head per soak tenant.
  for (const auto& [tenant, weight] : scfg.tenant_weights) {
    (void)weight;
    geofm::Rng hr(campaign.seed ^ std::hash<std::string>{}(tenant));
    server.heads().put(tenant, std::make_unique<geofm::nn::Linear>(
                                   "soak." + tenant, e.width, 4, hr));
  }
  const size_t bursts =
      campaign.overload_steps.empty() ? 1 : campaign.overload_steps.size();
  for (size_t b = 0; b < bursts; ++b) {
    std::vector<std::future<serve::EmbedResult>> futs;
    for (i64 r = 0; r < campaign.overload_requests; ++r) {
      geofm::Rng rng(campaign.seed ^ (u64(b) << 32) ^ u64(r));
      serve::EmbedRequest req;
      req.image = geofm::Tensor::randn(
          {e.in_channels, e.img_size, e.img_size}, rng, 0.5f);
      req.tenant = (r % 4 == 0) ? "soak-light" : "soak-heavy";
      req.lane = (r % 8 == 0) ? serve::Lane::kInteractive : serve::Lane::kBulk;
      futs.push_back(server.submit(std::move(req)));
      audit.issued += 1;
    }
    for (auto& f : futs) {
      try {
        f.get();
        audit.resolved += 1;
      } catch (const geofm::Error&) {
        audit.resolved += 1;  // a typed shed IS a resolution
      }
    }
  }
  server.stop();
  audit.stats = server.stats();
  return audit;
}

i64 parse_i64(const char* s, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 0);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "soak_chaos: bad value for %s: %s\n", flag, s);
    std::exit(2);
  }
  return static_cast<i64>(v);
}

}  // namespace

int main(int argc, char** argv) {
  double budget_seconds = 60.0;
  i64 max_campaigns = 0;  // 0 = budget-limited only
  u64 base_seed = 0xc4a05ULL;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "soak_chaos: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seconds") == 0) {
      budget_seconds = static_cast<double>(parse_i64(need("--seconds"),
                                                     "--seconds"));
    } else if (std::strcmp(argv[i], "--campaigns") == 0) {
      max_campaigns = parse_i64(need("--campaigns"), "--campaigns");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base_seed = static_cast<u64>(parse_i64(need("--seed"), "--seed"));
    } else {
      std::fprintf(stderr,
                   "usage: soak_chaos [--seconds N] [--campaigns N] "
                   "[--seed S]\n");
      return 2;
    }
  }

  const auto corpus = geofm::data::million_aid_pretrain(64, 16);
  const std::string soak_root =
      "/tmp/geofm_soak_" + std::to_string(base_seed);
  fs::remove_all(soak_root);

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  i64 ran = 0;
  i64 failed = 0;
  while ((ran == 0 || elapsed() < budget_seconds) &&
         (max_campaigns == 0 || ran < max_campaigns)) {
    const u64 seed = base_seed + static_cast<u64>(ran);
    const std::string dir = soak_root + "/campaign_" + std::to_string(seed);
    const std::string primary = dir + "/primary";
    const std::string mirror = dir + "/mirror";
    fs::create_directories(primary);
    geofm::ckpt::reset_save_state(primary);

    geofm::chaos::CampaignConfig ccfg;
    ccfg.seed = seed;
    ccfg.world = 4;
    ccfg.steps = 8;
    ccfg.io_ops = 6;
    geofm::chaos::Campaign campaign = geofm::chaos::generate_campaign(ccfg);
    std::printf("=== campaign seed=%llu (%lld/%s, %.0fs elapsed) ===\n%s",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(ran + 1),
                max_campaigns > 0 ? std::to_string(max_campaigns).c_str()
                                  : "budget",
                elapsed(), campaign.describe().c_str());

    auto cfg = soak_elastic_config(primary, mirror);
    cfg.faults = campaign.plan;

    bool campaign_ok = true;
    try {
      const auto res = geofm::train::run_elastic(cfg, corpus);
      const auto audit = flood_server(campaign, primary, mirror);

      geofm::chaos::InvariantInputs in;
      in.config = &cfg;
      in.result = &res;
      in.corpus = &corpus;
      in.publish_roots = {primary, mirror};
      in.serve = audit;
      const auto report = geofm::chaos::check_invariants(in);
      std::printf("%s", report.to_string().c_str());
      campaign_ok = report.ok();
    } catch (const std::exception& e) {
      // run_elastic only throws when recovery is impossible — for these
      // bounded campaigns (max_kills=1, tolerated IO) that is itself a
      // violated guarantee, not an expected outcome.
      std::printf("VIOLATION [harness] campaign did not complete: %s\n",
                  e.what());
      campaign_ok = false;
    }

    ran += 1;
    if (!campaign_ok) {
      failed += 1;
      std::printf("campaign %llu FAILED — roots kept at %s\n",
                  static_cast<unsigned long long>(seed), dir.c_str());
    } else {
      fs::remove_all(dir);
    }
  }

  std::printf("soak: %lld campaign(s) in %.1fs, %lld violated\n",
              static_cast<long long>(ran), elapsed(),
              static_cast<long long>(failed));
  if (failed == 0) fs::remove_all(soak_root);
  return failed == 0 ? 0 : 1;
}
