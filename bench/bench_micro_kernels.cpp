// Microbenchmarks of the tensor/nn kernels (google-benchmark): GEMM
// variants, softmax, layernorm, attention block forward/backward, and
// patchify — the building blocks whose cost model the simulator abstracts.
#include <benchmark/benchmark.h>

#include "nn/block.hpp"
#include "tensor/ops.hpp"

using namespace geofm;

namespace {

void BM_MatmulNN(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNN)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNT(benchmark::State& state) {
  const i64 n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNT)->Arg(128);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::randn({256, 256}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::softmax_lastdim(x));
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_SoftmaxLastDim);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::randn({512, 128}, rng);
  Tensor g = Tensor::ones({128});
  Tensor b = Tensor::zeros({128});
  ops::LayerNormCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::layernorm(x, g, b, 1e-6f, cache));
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_LayerNorm);

void BM_TransformerBlockForward(benchmark::State& state) {
  const i64 width = state.range(0);
  Rng rng(5);
  nn::TransformerBlock blk("b", width, width / 8, 4 * width, rng);
  Tensor x = Tensor::randn({8, 17, width}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blk.forward(x));
  }
}
BENCHMARK(BM_TransformerBlockForward)->Arg(16)->Arg(32)->Arg(64);

void BM_TransformerBlockBackward(benchmark::State& state) {
  const i64 width = state.range(0);
  Rng rng(6);
  nn::TransformerBlock blk("b", width, width / 8, 4 * width, rng);
  Tensor x = Tensor::randn({8, 17, width}, rng);
  Tensor dy = Tensor::randn({8, 17, width}, rng);
  blk.forward(x);
  for (auto _ : state) {
    blk.zero_grad();
    benchmark::DoNotOptimize(blk.backward(dy));
  }
}
BENCHMARK(BM_TransformerBlockBackward)->Arg(32);

void BM_Patchify(benchmark::State& state) {
  Rng rng(7);
  Tensor img = Tensor::randn({16, 3, 64, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::patchify(img, 8));
  }
  state.SetItemsProcessed(state.iterations() * img.numel());
}
BENCHMARK(BM_Patchify);

}  // namespace

BENCHMARK_MAIN();
