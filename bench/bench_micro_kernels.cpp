// Interleaved scalar-vs-SIMD A/B microbenchmark of the kernel engine
// (tensor/kernels/): GEMM variants, layernorm and softmax forward +
// backward, the AdamW update, and patchify.
//
// Methodology: for each case the two modes alternate round-robin
// (scalar, simd, scalar, simd, ...) so frequency drift, cache state, and
// background load hit both sides equally; each round times `reps`
// back-to-back calls after one warmup call, and the reported number is
// the best round per mode. Speedup = best scalar / best simd. Results go
// to stdout as a table and to <cache>/BENCH_kernels.json.
//
// GEOFM_BENCH_QUICK=1 shrinks sizes and rounds for smoke runs.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/table.hpp"
#include "util/thread_context.hpp"

using namespace geofm;

namespace {

struct CaseResult {
  std::string name;
  std::string shape;
  i64 flops = 0;  // per call; 0 = bandwidth-bound, no GFLOP/s column
  double scalar_s = 0;
  double simd_s = 0;

  double speedup() const { return scalar_s / simd_s; }
};

int rounds() { return bench::quick_mode() ? 2 : 5; }

// Best-of-rounds, modes interleaved within every round.
CaseResult ab_run(const std::string& name, const std::string& shape,
                  i64 flops, int reps, const std::function<void()>& fn) {
  CaseResult res{name, shape, flops,
                 std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
  const int n_rounds = rounds();
  for (int round = 0; round < n_rounds; ++round) {
    for (int side = 0; side < 2; ++side) {
      // Alternate which mode leads each round.
      const bool scalar_now = ((round + side) % 2) == 0;
      kernels::ModeGuard guard(scalar_now ? kernels::Mode::kScalar
                                          : kernels::Mode::kSimd);
      fn();  // warmup: page in, populate caches under this mode
      const u64 t0 = monotonic_ns();
      for (int i = 0; i < reps; ++i) fn();
      const double per_call =
          static_cast<double>(monotonic_ns() - t0) * 1e-9 / reps;
      double& best = scalar_now ? res.scalar_s : res.simd_s;
      best = std::min(best, per_call);
    }
  }
  return res;
}

std::string dims(std::initializer_list<i64> d) {
  std::string s;
  for (i64 v : d) {
    if (!s.empty()) s += "x";
    s += std::to_string(v);
  }
  return s;
}

double gflops(const CaseResult& r, double seconds) {
  return static_cast<double>(r.flops) / seconds * 1e-9;
}

}  // namespace

int main() {
  bench::banner("micro-kernel A/B: scalar oracle vs SIMD engine",
                "kernel engine validation (DESIGN §5); not a paper figure");
  std::printf("simd lanes: %d, mode default: %s\n", kernels::simd_lanes(),
              kernels::mode_name(kernels::active_mode()));

  const bool quick = bench::quick_mode();
  const int reps = quick ? 1 : 3;
  std::vector<CaseResult> results;
  Rng rng(42);

  // --- GEMM: NN / NT / TN at growing cubes --------------------------------
  std::vector<i64> sizes = quick ? std::vector<i64>{128}
                                 : std::vector<i64>{128, 256, 320};
  for (i64 n : sizes) {
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    const i64 flops = 2 * n * n * n;
    results.push_back(ab_run("gemm_nn", dims({n, n, n}), flops, reps,
                             [&] { ops::matmul(a, b); }));
    results.push_back(ab_run("gemm_nt", dims({n, n, n}), flops, reps,
                             [&] { ops::matmul_nt(a, b); }));
    results.push_back(ab_run("gemm_tn", dims({n, n, n}), flops, reps,
                             [&] { ops::matmul_tn(a, b); }));
  }

  // --- layernorm fwd/bwd ---------------------------------------------------
  {
    const i64 rows = quick ? 256 : 1024, cols = 768;
    Tensor x = Tensor::randn({rows, cols}, rng);
    Tensor gamma = Tensor::ones({cols});
    Tensor beta = Tensor::zeros({cols});
    ops::LayerNormCache cache;
    Tensor y = ops::layernorm(x, gamma, beta, 1e-5f, cache);
    Tensor dy = Tensor::randn({rows, cols}, rng);
    Tensor dgamma = Tensor::zeros({cols});
    Tensor dbeta = Tensor::zeros({cols});
    results.push_back(ab_run("layernorm_fwd", dims({rows, cols}),
                             8 * rows * cols, reps,
                             [&] { ops::layernorm(x, gamma, beta, 1e-5f,
                                                  cache); }));
    results.push_back(ab_run("layernorm_bwd", dims({rows, cols}),
                             14 * rows * cols, reps, [&] {
                               dgamma.zero_();
                               dbeta.zero_();
                               ops::layernorm_backward(dy, x, gamma, cache,
                                                       dgamma, dbeta);
                             }));
  }

  // --- softmax fwd/bwd -----------------------------------------------------
  {
    // L2-resident working set (~1.5 MB): softmax is attention-score sized
    // in practice, and an L3/DRAM-spilling shape would measure memory
    // bandwidth instead of the kernel.
    const i64 rows = quick ? 128 : 256, cols = 512;
    const int sreps = reps * 8;
    Tensor x = Tensor::randn({rows, cols}, rng, 3.f);
    Tensor y = ops::softmax_lastdim(x);
    Tensor dy = Tensor::randn({rows, cols}, rng);
    results.push_back(ab_run("softmax_fwd", dims({rows, cols}),
                             5 * rows * cols, sreps,
                             [&] { ops::softmax_lastdim(x); }));
    results.push_back(ab_run("softmax_bwd", dims({rows, cols}),
                             4 * rows * cols, sreps, [&] {
                               ops::softmax_backward_lastdim(dy, y);
                             }));
  }

  // --- AdamW update --------------------------------------------------------
  {
    const i64 n = quick ? (1 << 18) : (1 << 21);
    Tensor w = Tensor::randn({n}, rng);
    Tensor g = Tensor::randn({n}, rng);
    Tensor m = Tensor::zeros({n});
    Tensor v = Tensor::zeros({n});
    kernels::AdamWConfig cfg;
    cfg.lr = 1e-3;
    cfg.weight_decay = 0.05;
    cfg.bias_c1 = 0.1;
    cfg.bias_c2 = 0.001;
    results.push_back(ab_run("adamw", dims({n}), 12 * n, reps, [&] {
      kernels::adamw_update(n, w.data(), g.data(), m.data(), v.data(), cfg);
    }));
  }

  // --- patchify ------------------------------------------------------------
  {
    Tensor img = Tensor::randn({16, 3, 96, 96}, rng);
    results.push_back(ab_run("patchify", "16x3x96x96/p8", 0, reps,
                             [&] { ops::patchify(img, 8); }));
  }

  // --- report --------------------------------------------------------------
  TextTable table({"kernel", "shape", "scalar_ms", "simd_ms", "scalar_gfs",
                   "simd_gfs", "speedup"});
  std::string json = "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    table.add_row({r.name, r.shape, fmt_f(r.scalar_s * 1e3, 3),
                   fmt_f(r.simd_s * 1e3, 3),
                   r.flops > 0 ? fmt_f(gflops(r, r.scalar_s), 2) : "-",
                   r.flops > 0 ? fmt_f(gflops(r, r.simd_s), 2) : "-",
                   fmt_f(r.speedup(), 2)});
    json += "  {\"kernel\": \"" + r.name + "\", \"shape\": \"" + r.shape +
            "\", \"scalar_ms\": " + fmt_f(r.scalar_s * 1e3, 4) +
            ", \"simd_ms\": " + fmt_f(r.simd_s * 1e3, 4) +
            ", \"flops\": " + std::to_string(r.flops) +
            ", \"speedup\": " + fmt_f(r.speedup(), 3) + "}";
    json += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  json += "]\n";
  std::printf("%s", table.to_string().c_str());
  bench::save_csv(table, "BENCH_kernels");
  const std::string json_path = bench::cache_dir() + "/BENCH_kernels.json";
  write_file(json_path, json);
  std::printf("[saved %s]\n", json_path.c_str());
  return 0;
}
