// Campaign planner: estimated wall time, node-hours and energy for the
// paper's actual pretraining job — 100 epochs over the 990 848-image
// MillionAID corpus at 512x512, local batch 32, NO_SHARD (paper Sec. V-B:
// global batch 2048 = 8 nodes; we sweep node counts) — for each Table I
// model that fits. This operationalizes the paper's "practical guide"
// framing and contextualizes the intro's Florence/CLIP compute budgets.
#include "bench_common.hpp"
#include "models/config.hpp"
#include "sim/simulator.hpp"

using namespace geofm;
using namespace geofm::sim;
using parallel::ShardingStrategy;

namespace {

// Cheapest feasible (fits-in-HBM) plan for a model at a node count, by
// simulated throughput, over the paper's strategy menu.
struct Pick {
  std::string label;
  ParallelPlan plan;
  double ips;
};

Pick best_plan(const StepWorkload& w, const MachineSpec& m, int nodes) {
  Pick best{"-", {}, 0};
  auto consider = [&](const std::string& label, const ParallelPlan& p) {
    TrainingSimulator sim(w, m, nodes, p);
    if (sim.memory_footprint().total() > m.gpu.hbm_bytes) return;
    const double ips = sim.simulate_step().images_per_second_total;
    if (ips > best.ips) best = {label, p, ips};
  };
  ParallelPlan h1;
  h1.fsdp.strategy = ShardingStrategy::kHybridShard;
  h1.fsdp.hybrid_group_size = 1;
  consider("HYBRID_1GPU", h1);
  for (int g : {2, 4, 8, 16}) {
    if (g > nodes * m.gpus_per_node) continue;
    ParallelPlan h = h1;
    h.fsdp.hybrid_group_size = g;
    consider("HYBRID_" + std::to_string(g), h);
  }
  ParallelPlan fs;
  fs.fsdp.strategy = ShardingStrategy::kFullShard;
  consider("FULL_SHARD", fs);
  ParallelPlan so;
  so.fsdp.strategy = ShardingStrategy::kShardGradOp;
  consider("SHARD_GRAD_OP", so);
  return best;
}

}  // namespace

int main() {
  bench::banner("Campaign planner — 100-epoch MillionAID pretraining",
                "operationalizes the paper's practical-guide framing "
                "(Secs. I, IV-E, V-B)");

  const MachineSpec machine = frontier();
  const i64 corpus = 990848;  // paper Table II
  const i64 epochs = 100;     // paper Sec. V-B

  TextTable t({"Model", "Nodes", "best strategy", "ips", "wall [h]",
               "node-hours", "energy [MWh]"});
  for (const auto& cfg : models::table1_variants()) {
    auto enc = cfg;
    enc.img_size = 512;  // pretraining resolution
    enc.patch_size = 16;
    const auto workload = mae_step_workload(models::mae_for(enc), 32);
    for (int nodes : {8, 64}) {
      const Pick pick = best_plan(workload, machine, nodes);
      if (pick.ips <= 0) {
        t.add_row({cfg.name, fmt_i(nodes), "does not fit", "-", "-", "-",
                   "-"});
        continue;
      }
      const auto est = estimate_pretraining(workload, machine, nodes,
                                            pick.plan, corpus, epochs);
      t.add_row({cfg.name, fmt_i(nodes), pick.label, fmt_f(pick.ips, 0),
                 fmt_f(est.wall_hours, 1), fmt_f(est.node_hours, 0),
                 fmt_f(est.energy_mwh, 2)});
    }
  }
  t.print();
  std::printf(
      "context: the paper's related-work budgets — Florence: 10 days x 512\n"
      "A100s (~123k GPU-hours); CLIP: 12 days x 256 V100s. The estimates\n"
      "above say what the same ambition costs for geospatial MAE\n"
      "pretraining on Frontier under each model scale.\n");
  bench::save_csv(t, "time_to_train");
  return 0;
}
