// Shared machinery for the downstream-evaluation benches (Fig 5, Fig 6,
// Table III): pretraining the four proxy models with the paper's recipe
// (scaled to CPU), caching checkpoints/losses/probe results so the three
// benches can share work when run in sequence.
#pragma once

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "data/datasets.hpp"
#include "models/mae.hpp"
#include "train/checkpoint.hpp"
#include "train/linear_probe.hpp"
#include "train/pretrain.hpp"

namespace geofm::bench {

struct PretrainedProxy {
  models::ViTConfig cfg;
  std::shared_ptr<models::MAE> mae;
  std::vector<float> epoch_losses;  // empty when loaded without loss log
  std::vector<float> step_losses;
};

/// The functional pretraining recipe: the paper's protocol (identical
/// hyper-parameters across model sizes, AdamW, cosine schedule, mask 75%)
/// at proxy scale. Quick mode shrinks corpus and epochs for smoke runs.
struct ProxyRecipe {
  i64 corpus = 2048;
  i64 epochs = 30;
  i64 batch = 64;
  double lr = 3e-3;
  u64 seed = 7;
};

inline ProxyRecipe proxy_recipe() {
  ProxyRecipe r;
  if (quick_mode()) {
    r.corpus = 512;
    r.epochs = 6;
  }
  return r;
}

inline std::string ckpt_path(const std::string& name) {
  return cache_dir() + "/ckpt_" + name + ".bin";
}

inline std::string loss_path(const std::string& name) {
  return cache_dir() + "/loss_" + name + ".csv";
}

inline void save_losses(const std::string& name,
                        const train::PretrainResult& r) {
  std::ostringstream oss;
  oss << "epoch_loss\n";
  for (float l : r.epoch_losses) oss << l << "\n";
  write_file(loss_path(name) , oss.str());
  std::ostringstream oss2;
  oss2 << "step_loss\n";
  for (float l : r.step_losses) oss2 << l << "\n";
  write_file(cache_dir() + "/steploss_" + name + ".csv", oss2.str());
}

inline bool load_losses(const std::string& name, std::vector<float>& epochs,
                        std::vector<float>& steps) {
  auto read = [](const std::string& path, std::vector<float>& out) {
    std::ifstream in(path);
    if (!in.good()) return false;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      if (!line.empty()) out.push_back(std::stof(line));
    }
    return !out.empty();
  };
  return read(loss_path(name), epochs) &&
         read(cache_dir() + "/steploss_" + name + ".csv", steps);
}

/// Returns the four pretrained proxies, training any that are not cached.
inline std::vector<PretrainedProxy> pretrained_proxies(bool verbose = true) {
  const ProxyRecipe recipe = proxy_recipe();
  std::vector<PretrainedProxy> out;
  for (const auto& cfg : models::proxy_variants()) {
    PretrainedProxy p;
    p.cfg = cfg;
    Rng rng(1);
    p.mae = std::make_shared<models::MAE>(models::mae_for(cfg), rng);

    const std::string ck = ckpt_path(cfg.name);
    const bool have_ckpt = std::filesystem::exists(ck);
    const bool have_losses =
        load_losses(cfg.name, p.epoch_losses, p.step_losses);
    bool loaded = false;
    if (have_ckpt && have_losses) {
      // A cached checkpoint from an older format (or a corrupted file)
      // is rejected by the loader; fall through to retraining then.
      try {
        train::load_checkpoint(*p.mae, ck);
        loaded = true;
        if (verbose) std::printf("[%s: loaded cached checkpoint]\n",
                                 cfg.name.c_str());
      } catch (const Error& e) {
        if (verbose) std::printf("[%s: cached checkpoint unusable (%s)]\n",
                                 cfg.name.c_str(), e.what());
        p.epoch_losses.clear();
        p.step_losses.clear();
      }
    }
    if (!loaded) {
      if (verbose) {
        std::printf("[%s: pretraining %lld imgs x %lld epochs ...]\n",
                    cfg.name.c_str(), (long long)recipe.corpus,
                    (long long)recipe.epochs);
        std::fflush(stdout);
      }
      auto corpus = data::million_aid_pretrain(recipe.corpus, cfg.img_size);
      train::PretrainConfig pc;
      pc.epochs = recipe.epochs;
      pc.batch_size = recipe.batch;
      pc.base_lr = recipe.lr;
      pc.seed = recipe.seed;
      auto result = train::pretrain_mae(*p.mae, corpus, pc);
      p.epoch_losses = result.epoch_losses;
      p.step_losses = result.step_losses;
      train::save_checkpoint(*p.mae, ck);
      save_losses(cfg.name, result);
    }
    out.push_back(std::move(p));
  }
  return out;
}

/// The probe datasets of Table II (NWPU scaled 1/3 to keep the bench in
/// CPU minutes; class count and balance unchanged).
inline std::vector<data::SceneDataset> probe_datasets() {
  std::vector<data::SceneDataset> out;
  const i64 nwpu_div = quick_mode() ? 9 : 3;
  const data::DatasetScale qs{quick_mode() ? 3 : 1};
  out.push_back(data::ucm(32, qs));
  out.push_back(data::aid(32, qs));
  out.push_back(data::nwpu(32, {nwpu_div}));
  out.push_back(data::million_aid(32, qs));
  return out;
}

inline train::ProbeConfig probe_config() {
  train::ProbeConfig cfg;
  cfg.epochs = quick_mode() ? 10 : 60;
  cfg.batch_size = 64;
  // The paper's LARS base lr is 0.1 at batch 256 on full-scale features;
  // proxy-scale features need a hotter probe (effective lr 0.2) to
  // converge within the budget — swept in EXPERIMENTS.md.
  cfg.base_lr = 0.8;
  cfg.seed = 3;
  return cfg;
}

/// Probe-result cache shared between the Fig 6 and Table III benches.
inline std::string probe_curve_path(const std::string& model,
                                    const std::string& dataset) {
  return cache_dir() + "/probe_" + model + "_" + dataset + ".csv";
}

inline void save_probe(const std::string& model, const std::string& dataset,
                       const train::ProbeResult& r) {
  std::ostringstream oss;
  oss << "top1,top5\n";
  for (size_t i = 0; i < r.top1_per_epoch.size(); ++i) {
    oss << r.top1_per_epoch[i] << "," << r.top5_per_epoch[i] << "\n";
  }
  write_file(probe_curve_path(model, dataset), oss.str());
}

inline bool load_probe(const std::string& model, const std::string& dataset,
                       train::ProbeResult& r) {
  std::ifstream in(probe_curve_path(model, dataset));
  if (!in.good()) return false;
  std::string line;
  std::getline(in, line);
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    r.top1_per_epoch.push_back(std::stod(line.substr(0, comma)));
    r.top5_per_epoch.push_back(std::stod(line.substr(comma + 1)));
  }
  if (r.top1_per_epoch.empty()) return false;
  r.final_top1 = r.top1_per_epoch.back();
  r.final_top5 = r.top5_per_epoch.back();
  return true;
}

/// Runs (or loads) the full probe grid: 4 models x 4 datasets.
inline std::vector<std::vector<train::ProbeResult>> probe_grid(
    std::vector<PretrainedProxy>& proxies, bool verbose = true) {
  auto datasets = probe_datasets();
  std::vector<std::vector<train::ProbeResult>> grid;
  for (auto& proxy : proxies) {
    std::vector<train::ProbeResult> row;
    for (auto& ds : datasets) {
      train::ProbeResult r;
      if (!load_probe(proxy.cfg.name, ds.name(), r)) {
        if (verbose) {
          std::printf("[probing %s on %s ...]\n", proxy.cfg.name.c_str(),
                      ds.name().c_str());
          std::fflush(stdout);
        }
        r = train::linear_probe(*proxy.mae, ds, probe_config());
        save_probe(proxy.cfg.name, ds.name(), r);
      }
      row.push_back(std::move(r));
    }
    grid.push_back(std::move(row));
  }
  return grid;
}

}  // namespace geofm::bench
