// Microbenchmarks of the thread-rank collective substrate: all-reduce /
// all-gather / reduce-scatter across rank counts and payload sizes.
#include <benchmark/benchmark.h>

#include "comm/communicator.hpp"

using namespace geofm;

namespace {

void BM_AllReduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const i64 elems = state.range(1);
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      Tensor t = Tensor::full({elems}, static_cast<float>(c.rank()));
      c.all_reduce(t, comm::ReduceOp::kSum);
      benchmark::DoNotOptimize(t.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * elems);
}
BENCHMARK(BM_AllReduce)
    ->Args({2, 1 << 12})
    ->Args({4, 1 << 12})
    ->Args({8, 1 << 12})
    ->Args({4, 1 << 16});

void BM_AllGather(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const i64 elems = state.range(1);
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      Tensor shard = Tensor::full({elems}, static_cast<float>(c.rank()));
      Tensor out({elems * ranks});
      c.all_gather(shard, out);
      benchmark::DoNotOptimize(out.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * elems);
}
BENCHMARK(BM_AllGather)->Args({4, 1 << 12})->Args({8, 1 << 14});

void BM_ReduceScatter(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const i64 chunk = state.range(1);
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      Tensor in = Tensor::ones({chunk * ranks});
      Tensor shard({chunk});
      c.reduce_scatter(in, shard, comm::ReduceOp::kSum);
      benchmark::DoNotOptimize(shard.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * chunk);
}
BENCHMARK(BM_ReduceScatter)->Args({4, 1 << 12});

}  // namespace

BENCHMARK_MAIN();
