// Microbenchmarks of the thread-rank collective substrate: all-reduce /
// all-gather / reduce-scatter across rank counts and payload sizes.
#include <benchmark/benchmark.h>

#include <vector>

#include "comm/communicator.hpp"

using namespace geofm;

namespace {

void BM_AllReduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const i64 elems = state.range(1);
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      Tensor t = Tensor::full({elems}, static_cast<float>(c.rank()));
      c.all_reduce(t, comm::ReduceOp::kSum);
      benchmark::DoNotOptimize(t.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * elems);
}
BENCHMARK(BM_AllReduce)
    ->Args({2, 1 << 12})
    ->Args({4, 1 << 12})
    ->Args({8, 1 << 12})
    ->Args({4, 1 << 16});

void BM_AllGather(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const i64 elems = state.range(1);
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      Tensor shard = Tensor::full({elems}, static_cast<float>(c.rank()));
      Tensor out({elems * ranks});
      c.all_gather(shard, out);
      benchmark::DoNotOptimize(out.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * elems);
}
BENCHMARK(BM_AllGather)->Args({4, 1 << 12})->Args({8, 1 << 14});

void BM_ReduceScatter(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const i64 chunk = state.range(1);
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      Tensor in = Tensor::ones({chunk * ranks});
      Tensor shard({chunk});
      c.reduce_scatter(in, shard, comm::ReduceOp::kSum);
      benchmark::DoNotOptimize(shard.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * chunk);
}
BENCHMARK(BM_ReduceScatter)->Args({4, 1 << 12});

// Nonblocking engine: `inflight` all-reduces posted back-to-back before any
// wait. Compares per-op cost against the blocking form (BM_AllReduce) and
// shows how issue/wait pipelining amortizes rendezvous overhead.
void BM_NonblockingAllReduceInFlight(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const i64 elems = state.range(1);
  const int inflight = static_cast<int>(state.range(2));
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      std::vector<Tensor> bufs;
      std::vector<comm::CollectiveHandle> handles;
      bufs.reserve(static_cast<size_t>(inflight));
      handles.reserve(static_cast<size_t>(inflight));
      for (int k = 0; k < inflight; ++k) {
        bufs.push_back(Tensor::full({elems}, static_cast<float>(c.rank())));
        handles.push_back(c.iall_reduce(bufs.back(), comm::ReduceOp::kSum));
      }
      for (auto& h : handles) h.wait();
      benchmark::DoNotOptimize(bufs.front().data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * elems * inflight);
}
BENCHMARK(BM_NonblockingAllReduceInFlight)
    ->Args({4, 1 << 12, 1})
    ->Args({4, 1 << 12, 4})
    ->Args({4, 1 << 12, 16})
    ->Args({8, 1 << 12, 8});

// Post + compute + wait: how much of the collective's latency a rank can
// hide behind independent local work (the DDP/FSDP overlap pattern).
void BM_NonblockingAllReduceOverlapsCompute(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const i64 elems = state.range(1);
  for (auto _ : state) {
    comm::run_ranks(ranks, [&](comm::Communicator& c) {
      Tensor t = Tensor::full({elems}, static_cast<float>(c.rank()));
      Tensor local = Tensor::ones({elems});
      auto h = c.iall_reduce(t, comm::ReduceOp::kSum);
      // Independent compute while the collective is in flight.
      float acc = 0.f;
      for (i64 i = 0; i < local.numel(); ++i) acc += local[i] * local[i];
      benchmark::DoNotOptimize(acc);
      h.wait();
      benchmark::DoNotOptimize(t.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * elems);
}
BENCHMARK(BM_NonblockingAllReduceOverlapsCompute)
    ->Args({4, 1 << 12})
    ->Args({4, 1 << 16});

}  // namespace

BENCHMARK_MAIN();
