// Shared helpers for the reproduction benches: quick-mode switch, cache
// directory for artifacts shared between benches (pretrained checkpoints,
// probe curves), and uniform banner printing.
//
// Conventions:
//  * every bench binary runs with no arguments and prints the paper
//    table/figure it regenerates as an aligned text table;
//  * benches also drop machine-readable CSVs into the cache directory;
//  * GEOFM_BENCH_QUICK=1 shrinks the functional (training) benches for
//    smoke runs; simulator benches are always fast.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/table.hpp"

namespace geofm::bench {

inline bool quick_mode() {
  const char* env = std::getenv("GEOFM_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline std::string cache_dir() {
  if (const char* env = std::getenv("GEOFM_BENCH_CACHE")) return env;
  return "geofm_bench_cache";
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  if (quick_mode()) std::printf("(GEOFM_BENCH_QUICK=1: reduced workload)\n");
  std::printf("================================================================\n");
}

inline void save_csv(const TextTable& table, const std::string& name) {
  const std::string path = cache_dir() + "/" + name + ".csv";
  write_file(path, table.to_csv());
  std::printf("[saved %s]\n", path.c_str());
}

}  // namespace geofm::bench
