// Ablation: MAE mask ratio. The paper adopts the MAE default of 75%
// masking; this bench pretrains a proxy encoder at several ratios and
// probes it, showing why the aggressive default transfers well (and that
// near-total masking starves the encoder of context).
#include "bench_common.hpp"
#include "bench_downstream_common.hpp"

using namespace geofm;

int main() {
  bench::banner("Ablation — MAE mask ratio (paper fixes 75%)",
                "supports paper Sec. III-A / V-B choices");

  const i64 corpus_n = bench::quick_mode() ? 256 : 768;
  const i64 epochs = bench::quick_mode() ? 4 : 12;

  TextTable t({"Mask ratio", "visible patches", "final pretrain loss",
               "UCM top-1 (%)", "UCM top-5 (%)"});
  for (double ratio : {0.25, 0.50, 0.75, 0.90}) {
    Rng rng(1);
    models::MaeConfig cfg = models::mae_for(models::proxy_huge());
    cfg.mask_ratio = ratio;
    models::MAE mae(cfg, rng);

    auto corpus = data::million_aid_pretrain(corpus_n, 32);
    train::PretrainConfig pc;
    pc.epochs = epochs;
    pc.batch_size = 64;
    pc.base_lr = 3e-3;
    pc.seed = 7;
    auto result = train::pretrain_mae(mae, corpus, pc);

    train::ProbeConfig probe;
    probe.epochs = 30;
    probe.batch_size = 64;
    probe.base_lr = 0.8;
    probe.seed = 3;
    auto probed = train::linear_probe(mae, data::ucm(32, {.divisor = 3}),
                                      probe);
    t.add_row({fmt_f(ratio, 2), fmt_i(mae.n_keep()),
               fmt_f(result.epoch_losses.back(), 4),
               fmt_f(100 * probed.final_top1, 1),
               fmt_f(100 * probed.final_top5, 1)});
    std::printf("[mask %.2f done]\n", ratio);
    std::fflush(stdout);
  }
  t.print();
  std::printf(
      "takeaway: aggressive masking transfers at least as well as light\n"
      "masking — the harder pretext forces more semantic features — which\n"
      "is exactly the MAE finding behind the paper's 75%% default. The\n"
      "loss itself is not comparable across ratios (different masked-set\n"
      "denominators); transfer accuracy is the metric that matters.\n");
  bench::save_csv(t, "ablation_mask_ratio");
  return 0;
}
