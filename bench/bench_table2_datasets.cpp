// Reproduces paper Table II: the pretraining corpus and the four
// classification datasets with their train/test splits and class counts.
#include "bench_common.hpp"
#include "data/datasets.hpp"

using namespace geofm;

int main() {
  bench::banner("Table II — datasets for pretraining and linear probing",
                "Tsaris et al., Table II (Sec. V-A)");

  std::printf("\nPretraining corpus:\n");
  TextTable pre({"Dataset", "Training samples (paper)", "Proxy corpus"});
  pre.add_row({"MillionAID", "990848",
               "procedural scenes, configurable (default 2048)"});
  pre.print();

  std::printf("\nImage classification:\n");
  TextTable t({"Dataset", "Train", "Test", "Classes", "TR"});
  const char* tr[] = {"50%", "20%", "10%", "10%"};
  auto datasets = data::table2_classification_datasets();
  for (size_t i = 0; i < datasets.size(); ++i) {
    auto& ds = datasets[i];
    t.add_row({ds.name(), fmt_i(ds.size(data::Split::kTrain)),
               fmt_i(ds.size(data::Split::kTest)), fmt_i(ds.n_classes()),
               tr[i]});
  }
  t.print();
  std::printf("All split sizes and class counts match the paper exactly;\n"
              "imagery is the procedural geospatial substitute (DESIGN.md).\n");
  bench::save_csv(t, "table2");
  return 0;
}
