// Trace-span budget gate (CI): runs a representative distributed
// pretraining workload with tracing enabled, aggregates time per span
// name across every rank, and fails (exit 1) if any budgeted span's share
// of total step time exceeds its budget in scripts/span_budgets.txt.
//
// Budgets are *fractions of summed `step` span time*, not absolute
// seconds, so the gate is stable across machine speeds; they are set with
// generous headroom above healthy-run observations and exist to catch
// structural regressions — a collective that stopped overlapping, an
// unshard that re-materializes eagerly, a loader that renders the full
// global batch again, a checkpoint snapshot that grew a synchronous
// write — not to police noise.
//
// Usage:  bench_span_budget_gate [budgets-file]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "geofm.hpp"

using namespace geofm;

namespace {

// "span_name  max_fraction" per line; '#' starts a comment.
std::map<std::string, double> load_budgets(const std::string& path) {
  std::map<std::string, double> budgets;
  std::ifstream in(path);
  if (!in.good()) return budgets;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string name;
    double fraction = 0;
    if (ls >> name >> fraction) budgets[name] = fraction;
  }
  return budgets;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string budget_path =
      argc > 1 ? argv[1] : "scripts/span_budgets.txt";
  const auto budgets = load_budgets(budget_path);
  if (budgets.empty()) {
    std::fprintf(stderr, "span budget gate: no budgets loaded from %s\n",
                 budget_path.c_str());
    return 2;
  }

  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable();
  recorder.clear();

  // The workload: the distributed example's shape at CI scale — 4 ranks,
  // FULL_SHARD with backward prefetch, worker-side batch slicing, async
  // checkpointing. Every budgeted span is on this path.
  auto corpus = data::million_aid_pretrain(256, 32);
  const std::string ckpt_root = "/tmp/geofm_span_budget_gate_ckpt";
  std::filesystem::remove_all(ckpt_root);

  // The 10 Hz telemetry sampler runs across both training phases so its
  // own span (`telemetry.sample`) is budgeted like any other: the
  // "watching the run costs <1% of step time" claim is enforced here,
  // not asserted.
  const std::string telemetry_dir = "/tmp/geofm_span_budget_gate_telemetry";
  std::filesystem::remove_all(telemetry_dir);
  {
    obs::telemetry::TelemetryOptions topts;
    topts.dir = telemetry_dir;
    topts.interval_seconds = 0.1;
    obs::telemetry::start(topts);
  }

  train::DistributedPretrainConfig cfg;
  cfg.steps = 10;
  cfg.global_batch = 64;
  cfg.lr = 3e-3;
  cfg.seed = 9;
  cfg.loader_workers = 2;
  cfg.verbose = false;
  cfg.checkpoint_every_n_steps = 4;
  cfg.checkpoint_dir = ckpt_root;
  cfg.async_checkpoint = true;

  comm::run_ranks(4, [&](comm::Communicator& c) {
    Rng rng(1);
    models::MAE mae(models::mae_for(models::proxy_huge()), rng);
    parallel::FsdpOptions opts;
    opts.strategy = parallel::ShardingStrategy::kFullShard;
    opts.prefetch = parallel::BackwardPrefetch::kBackwardPre;
    parallel::Fsdp fsdp(mae, c, opts);
    train::pretrain_mae_distributed(mae, fsdp, c, corpus, cfg);
  });

  // Phase 2: the same shape under a mid-run rank kill, driven by the
  // elastic supervisor, so the recovery path (recover.detect /
  // recover.reform / recover.reshard) is on the gate — an absent
  // recover.* span means in-run recovery silently stopped working. The
  // killed rank re-joins at the next checkpoint boundary
  // (recover.readmit), and every published checkpoint is mirrored by the
  // retrying uploader (upload.exposed is the publish-side hook cost).
  const std::string elastic_root = ckpt_root + "_elastic";
  const std::string mirror_root = elastic_root + "_mirror";
  std::filesystem::remove_all(elastic_root);
  std::filesystem::remove_all(mirror_root);
  {
    train::ElasticConfig ecfg;
    ecfg.model = models::mae_for(models::proxy_huge());
    ecfg.model_seed = 1;
    ecfg.world = 4;
    ecfg.fsdp.strategy = parallel::ShardingStrategy::kFullShard;
    ecfg.fsdp.prefetch = parallel::BackwardPrefetch::kBackwardPre;
    ecfg.train = cfg;
    ecfg.train.steps = 8;
    ecfg.train.global_batch = 48;  // divides the shrunken world of 3
    ecfg.train.checkpoint_every_n_steps = 3;
    ecfg.train.checkpoint_dir = elastic_root;
    ecfg.train.async_checkpoint = false;
    ecfg.train.upload.destination = mirror_root;
    ecfg.readmission.readmit_quarantined = true;
    ecfg.faults.events.push_back(comm::FaultEvent::kill_at_step(2, 5));
    train::run_elastic(ecfg, corpus);
  }
  std::filesystem::remove_all(elastic_root);
  std::filesystem::remove_all(mirror_root);

  // The sampler's budget is its cost as a share of *training* step time;
  // stop it before the serving phase, which emits no `step` spans and
  // would otherwise inflate the sampler's share with idle ticks. Final
  // tick lands here; only the span cost matters, the series is discarded.
  obs::telemetry::stop();
  std::filesystem::remove_all(telemetry_dir);

  // Phase 3: the serving tier over the phase-1 checkpoints — start a
  // ModelServer on the latest published step, drive a burst of requests
  // (some repeated keys so the embedding cache hits), publish a newer
  // checkpoint and hot-swap to it, then drive a second burst. Puts
  // serve.encode (batched forwards) and serve.reload (initial load + one
  // swap) on the gate: a per-request unbatched forward, a cache that
  // stops hitting, or a reload storm all show up as budget violations,
  // and lost serve instrumentation trips the absent-span rule.
  {
    const auto model_cfg = models::mae_for(models::proxy_huge());
    serve::ServerConfig scfg;
    scfg.checkpoint_root = ckpt_root;
    scfg.model = model_cfg;
    scfg.max_batch = 8;
    scfg.max_delay_us = 200;
    scfg.cache_capacity = 64;
    scfg.poll_interval_seconds = 0;  // swaps driven explicitly below
    serve::ModelServer server(scfg);

    const auto& enc = model_cfg.encoder;
    const i64 per_image = enc.in_channels * enc.img_size * enc.img_size;
    Rng img_rng(77);
    auto drive_burst = [&](const char* tag) {
      std::vector<std::future<serve::EmbedResult>> futs;
      for (int i = 0; i < 24; ++i) {
        serve::EmbedRequest req;
        // 12 distinct scenes, each requested twice: the second round of
        // each key is a cache hit and skips the encoder.
        req.key = std::string(tag) + "/scene_" + std::to_string(i % 12);
        Rng scene_rng(img_rng.split(static_cast<u64>(i % 12)));
        req.image = Tensor({enc.in_channels, enc.img_size, enc.img_size});
        float* px = req.image.flat_view(0, per_image).data();
        for (i64 j = 0; j < per_image; ++j) {
          px[j] = static_cast<float>(scene_rng.uniform(-1.0, 1.0));
        }
        futs.push_back(server.submit(std::move(req)));
      }
      for (auto& f : futs) f.get();
    };
    drive_burst("a");

    // Publish a newer step (a fresh world-1 save above phase 1's latest)
    // and hot-swap to it mid-service.
    const i64 next_step = ckpt::latest_step(ckpt_root) + 1;
    {
      Rng rng(2);
      models::MAE fresh(model_cfg, rng);
      ckpt::Checkpointer writer(/*async=*/false);
      ckpt::SaveRequest sreq;
      sreq.dir = ckpt_root;
      sreq.step = next_step;
      sreq.state = ckpt::replicated_state(fresh, nullptr, 0, 1,
                                          /*for_save=*/true);
      writer.save(sreq);
    }
    if (!server.reload_now() || server.model_step() != next_step) {
      std::fprintf(stderr, "span budget gate: serving hot-swap failed\n");
      return 2;
    }
    drive_burst("b");
    server.stop();
  }

  std::map<std::string, double> seconds_by_span;
  for (const auto& e : recorder.snapshot()) {
    if (e.phase != obs::TraceEvent::Phase::kComplete) continue;
    seconds_by_span[e.name] += static_cast<double>(e.dur_ns) * 1e-9;
  }
  recorder.disable();
  std::filesystem::remove_all(ckpt_root);

  const auto step_it = seconds_by_span.find("step");
  if (step_it == seconds_by_span.end() || step_it->second <= 0) {
    std::fprintf(stderr, "span budget gate: no `step` spans recorded\n");
    return 2;
  }
  const double step_total = step_it->second;
  if (recorder.dropped_events() > 0) {
    std::fprintf(stderr,
                 "span budget gate: warning: %llu trace events dropped "
                 "(shares are lower bounds)\n",
                 static_cast<unsigned long long>(recorder.dropped_events()));
  }

  std::printf("span budget gate: %.2f s of step time across 4 ranks\n",
              step_total);
  int violations = 0;
  for (const auto& [name, budget] : budgets) {
    const auto it = seconds_by_span.find(name);
    if (it == seconds_by_span.end()) {
      // A budgeted span that never fired means the instrumentation (or
      // the feature) silently disappeared — that IS the regression.
      std::printf("  FAIL  %-22s absent from trace (budget %.3f)\n",
                  name.c_str(), budget);
      ++violations;
      continue;
    }
    const double share = it->second / step_total;
    const bool ok = share <= budget;
    std::printf("  %s  %-22s %6.3f of step time (budget %.3f)\n",
                ok ? "ok  " : "FAIL", name.c_str(), share, budget);
    if (!ok) ++violations;
  }
  if (violations > 0) {
    std::fprintf(stderr, "span budget gate: %d budget(s) exceeded\n",
                 violations);
    return 1;
  }
  std::printf("span budget gate: all budgets met\n");
  return 0;
}
