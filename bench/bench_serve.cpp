// Serving-tier latency/throughput bench: a closed-loop sweep over the
// batcher's two knobs.
//
// For each (max_batch, max_delay_us) configuration, a fixed pool of
// closed-loop clients (each submits, waits, submits again) drives a
// ModelServer serving a published checkpoint of the tiny bench encoder,
// with the embedding cache disabled so every request pays the batched
// encoder forward. Reports per-config p50/p99 request latency and
// throughput — the latency/utilization trade the knobs exist to tune:
// delay 0 ships whatever is queued the moment the worker frees (lowest
// latency per request, smallest batches), larger delays hold the door
// open so sparse traffic still fills batches.
//
// Prints a table and writes <cache>/BENCH_serve.json — the regression
// anchor for serving latency; scripts/ci.sh runs the quick shape and the
// span budget gate separately enforces serve.encode / serve.reload
// shares.
#include <algorithm>
#include <atomic>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "geofm.hpp"

using namespace geofm;

namespace {

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t rank = static_cast<size_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(v.size()))));
  if (rank > v.size()) rank = v.size();
  return v[rank - 1];
}

struct SweepPoint {
  i64 max_batch = 0;
  i64 max_delay_us = 0;
  i64 requests = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double throughput = 0;       // requests / second
  double mean_batch_size = 0;  // images per encoder forward
};

}  // namespace

int main() {
  bench::banner("serving tier: closed-loop latency/throughput sweep",
                "embedding service for the pretrained encoders (Sec. V)");

  const auto model_cfg = [] {
    models::ViTConfig enc{.name = "bench", .width = 32, .depth = 4,
                          .mlp_dim = 64, .heads = 4, .img_size = 16,
                          .patch_size = 4, .in_channels = 3};
    return models::mae_for(enc);
  }();

  // One published checkpoint for every configuration to serve.
  const std::string root = "/tmp/geofm_bench_serve_ckpt";
  std::filesystem::remove_all(root);
  ckpt::reset_save_state(root);
  {
    Rng rng(7);
    models::MAE model(model_cfg, rng);
    ckpt::SaveRequest req;
    req.dir = root;
    req.step = 1;
    req.state = ckpt::replicated_state(model, nullptr, 0, 1,
                                       /*for_save=*/true);
    ckpt::Checkpointer saver(/*async=*/false);
    saver.save(req);
  }

  const bool quick = bench::quick_mode();
  const int n_clients = quick ? 3 : 6;
  const int per_client = quick ? 12 : 50;
  const std::vector<i64> batches = quick ? std::vector<i64>{1, 8}
                                         : std::vector<i64>{1, 4, 8, 16};
  const std::vector<i64> delays_us = quick ? std::vector<i64>{0, 1000}
                                           : std::vector<i64>{0, 200, 1000,
                                                              5000};

  const auto& enc = model_cfg.encoder;
  std::vector<Tensor> scenes;
  for (int i = 0; i < 16; ++i) {
    Rng rng(0x5ce9e0000ULL + static_cast<u64>(i));
    scenes.push_back(Tensor::randn(
        {enc.in_channels, enc.img_size, enc.img_size}, rng, 0.5f));
  }

  std::vector<SweepPoint> points;
  for (const i64 max_batch : batches) {
    for (const i64 delay : delays_us) {
      serve::ServerConfig scfg;
      scfg.checkpoint_root = root;
      scfg.model = model_cfg;
      scfg.max_batch = max_batch;
      scfg.max_delay_us = delay;
      scfg.cache_capacity = 0;  // every request pays the encoder
      scfg.poll_interval_seconds = 0;
      serve::ModelServer server(scfg);

      std::vector<double> latencies(
          static_cast<size_t>(n_clients * per_client));
      std::atomic<size_t> slot{0};
      const double t0 = monotonic_seconds();
      std::vector<std::thread> clients;
      for (int c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
          for (int i = 0; i < per_client; ++i) {
            serve::EmbedRequest req;
            req.image = scenes[static_cast<size_t>((c * per_client + i) %
                                                   16)];
            const double s0 = monotonic_seconds();
            server.embed(std::move(req));
            latencies[slot.fetch_add(1)] = monotonic_seconds() - s0;
          }
        });
      }
      for (auto& t : clients) t.join();
      const double elapsed = monotonic_seconds() - t0;
      const serve::ServerStats stats = server.stats();
      server.stop();

      SweepPoint p;
      p.max_batch = max_batch;
      p.max_delay_us = delay;
      p.requests = static_cast<i64>(latencies.size());
      p.p50_ms = 1e3 * percentile(latencies, 50);
      p.p99_ms = 1e3 * percentile(latencies, 99);
      p.throughput = static_cast<double>(latencies.size()) / elapsed;
      p.mean_batch_size =
          stats.encodes > 0 ? static_cast<double>(stats.encoded_images) /
                                  static_cast<double>(stats.encodes)
                            : 0;
      points.push_back(p);
    }
  }
  // ----- overload phase ------------------------------------------------------
  // An open-loop burst far beyond capacity against a bounded admission
  // queue: what matters under overload is that the excess sheds fast
  // with typed errors while the admitted requests keep a bounded p99.
  struct OverloadResult {
    i64 offered = 0;
    i64 served = 0;
    i64 shed = 0;
    double shed_rate = 0;
    double admitted_p50_ms = 0;
    double admitted_p99_ms = 0;
  } overload;
  {
    serve::ServerConfig scfg;
    scfg.checkpoint_root = root;
    scfg.model = model_cfg;
    scfg.max_batch = 8;
    scfg.max_delay_us = 0;
    scfg.max_queue = 16;  // bounded admission: the shed path must engage
    scfg.cache_capacity = 0;
    scfg.poll_interval_seconds = 0;
    serve::ModelServer server(scfg);

    const int burst = quick ? 200 : 1000;
    std::vector<std::future<serve::EmbedResult>> futs;
    std::vector<double> submit_at(static_cast<size_t>(burst));
    futs.reserve(static_cast<size_t>(burst));
    for (int i = 0; i < burst; ++i) {
      serve::EmbedRequest req;
      req.image = scenes[static_cast<size_t>(i % 16)];
      submit_at[static_cast<size_t>(i)] = monotonic_seconds();
      futs.push_back(server.submit(std::move(req)));
    }
    std::vector<double> admitted;
    for (int i = 0; i < burst; ++i) {
      try {
        (void)futs[static_cast<size_t>(i)].get();
        admitted.push_back(monotonic_seconds() -
                           submit_at[static_cast<size_t>(i)]);
        overload.served += 1;
      } catch (const serve::Overloaded&) {
        overload.shed += 1;
      } catch (const serve::DeadlineExceeded&) {
        overload.shed += 1;
      }
    }
    server.stop();
    overload.offered = burst;
    overload.shed_rate =
        static_cast<double>(overload.shed) / static_cast<double>(burst);
    overload.admitted_p50_ms = 1e3 * percentile(admitted, 50);
    overload.admitted_p99_ms = 1e3 * percentile(admitted, 99);
  }
  std::filesystem::remove_all(root);

  TextTable table({"max_batch", "max_delay_us", "requests", "p50 ms",
                   "p99 ms", "req/s", "mean batch"});
  for (const SweepPoint& p : points) {
    table.add_row({std::to_string(p.max_batch),
                   std::to_string(p.max_delay_us),
                   std::to_string(p.requests), fmt_f(p.p50_ms, 3),
                   fmt_f(p.p99_ms, 3), fmt_f(p.throughput, 0),
                   fmt_f(p.mean_batch_size, 2)});
  }
  table.print();

  std::printf(
      "overload: offered %lld  served %lld  shed %lld (%.1f%%)  admitted "
      "p50 %.3f ms  p99 %.3f ms\n",
      static_cast<long long>(overload.offered),
      static_cast<long long>(overload.served),
      static_cast<long long>(overload.shed), 100.0 * overload.shed_rate,
      overload.admitted_p50_ms, overload.admitted_p99_ms);

  std::string json = "{\n  \"configs\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    if (i > 0) json += ',';
    json += "\n    {\"max_batch\": " + std::to_string(p.max_batch) +
            ", \"max_delay_us\": " + std::to_string(p.max_delay_us) +
            ", \"requests\": " + std::to_string(p.requests) +
            ", \"p50_ms\": " + fmt_f(p.p50_ms, 4) +
            ", \"p99_ms\": " + fmt_f(p.p99_ms, 4) +
            ", \"requests_per_second\": " + fmt_f(p.throughput, 1) +
            ", \"mean_batch_size\": " + fmt_f(p.mean_batch_size, 3) + "}";
  }
  json += "\n  ],\n  \"overload\": {\"offered\": " +
          std::to_string(overload.offered) +
          ", \"served\": " + std::to_string(overload.served) +
          ", \"shed\": " + std::to_string(overload.shed) +
          ", \"shed_rate\": " + fmt_f(overload.shed_rate, 4) +
          ", \"admitted_p50_ms\": " + fmt_f(overload.admitted_p50_ms, 4) +
          ", \"admitted_p99_ms\": " + fmt_f(overload.admitted_p99_ms, 4) +
          "},\n  \"clients\": " + std::to_string(n_clients) +
          ",\n  \"quick\": " + (quick ? std::string("true")
                                      : std::string("false")) +
          "\n}\n";
  bench::save_csv(table, "BENCH_serve");
  const std::string json_path = bench::cache_dir() + "/BENCH_serve.json";
  write_file(json_path, json);
  std::printf("[saved %s]\n", json_path.c_str());
  return 0;
}
