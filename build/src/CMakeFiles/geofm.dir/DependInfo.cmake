
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/communicator.cpp" "src/CMakeFiles/geofm.dir/comm/communicator.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/comm/communicator.cpp.o.d"
  "/root/repo/src/data/dataloader.cpp" "src/CMakeFiles/geofm.dir/data/dataloader.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/data/dataloader.cpp.o.d"
  "/root/repo/src/data/datasets.cpp" "src/CMakeFiles/geofm.dir/data/datasets.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/data/datasets.cpp.o.d"
  "/root/repo/src/data/scene_generator.cpp" "src/CMakeFiles/geofm.dir/data/scene_generator.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/data/scene_generator.cpp.o.d"
  "/root/repo/src/data/transforms.cpp" "src/CMakeFiles/geofm.dir/data/transforms.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/data/transforms.cpp.o.d"
  "/root/repo/src/models/config.cpp" "src/CMakeFiles/geofm.dir/models/config.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/models/config.cpp.o.d"
  "/root/repo/src/models/mae.cpp" "src/CMakeFiles/geofm.dir/models/mae.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/models/mae.cpp.o.d"
  "/root/repo/src/models/vit.cpp" "src/CMakeFiles/geofm.dir/models/vit.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/models/vit.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/geofm.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/block.cpp" "src/CMakeFiles/geofm.dir/nn/block.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/nn/block.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/CMakeFiles/geofm.dir/nn/layernorm.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/nn/layernorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/geofm.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/geofm.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/geofm.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/patch_embed.cpp" "src/CMakeFiles/geofm.dir/nn/patch_embed.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/nn/patch_embed.cpp.o.d"
  "/root/repo/src/nn/pos_embed.cpp" "src/CMakeFiles/geofm.dir/nn/pos_embed.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/nn/pos_embed.cpp.o.d"
  "/root/repo/src/optim/optimizer.cpp" "src/CMakeFiles/geofm.dir/optim/optimizer.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/optim/optimizer.cpp.o.d"
  "/root/repo/src/parallel/ddp.cpp" "src/CMakeFiles/geofm.dir/parallel/ddp.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/parallel/ddp.cpp.o.d"
  "/root/repo/src/parallel/fsdp.cpp" "src/CMakeFiles/geofm.dir/parallel/fsdp.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/parallel/fsdp.cpp.o.d"
  "/root/repo/src/sim/collective.cpp" "src/CMakeFiles/geofm.dir/sim/collective.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/sim/collective.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/geofm.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/geofm.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/geofm.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/sim/workload.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/geofm.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/geofm.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/train/checkpoint.cpp" "src/CMakeFiles/geofm.dir/train/checkpoint.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/train/checkpoint.cpp.o.d"
  "/root/repo/src/train/finetune.cpp" "src/CMakeFiles/geofm.dir/train/finetune.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/train/finetune.cpp.o.d"
  "/root/repo/src/train/linear_probe.cpp" "src/CMakeFiles/geofm.dir/train/linear_probe.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/train/linear_probe.cpp.o.d"
  "/root/repo/src/train/pretrain.cpp" "src/CMakeFiles/geofm.dir/train/pretrain.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/train/pretrain.cpp.o.d"
  "/root/repo/src/util/chart.cpp" "src/CMakeFiles/geofm.dir/util/chart.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/util/chart.cpp.o.d"
  "/root/repo/src/util/common.cpp" "src/CMakeFiles/geofm.dir/util/common.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/util/common.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/geofm.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/util/log.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/geofm.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/geofm.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/geofm.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
