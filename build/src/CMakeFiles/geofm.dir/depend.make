# Empty dependencies file for geofm.
# This may be replaced when dependencies are built.
