file(REMOVE_RECURSE
  "libgeofm.a"
)
