file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ddp_bucket.dir/bench_ablation_ddp_bucket.cpp.o"
  "CMakeFiles/bench_ablation_ddp_bucket.dir/bench_ablation_ddp_bucket.cpp.o.d"
  "bench_ablation_ddp_bucket"
  "bench_ablation_ddp_bucket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ddp_bucket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
