# Empty compiler generated dependencies file for bench_ablation_ddp_bucket.
# This may be replaced when dependencies are built.
