file(REMOVE_RECURSE
  "CMakeFiles/bench_time_to_train.dir/bench_time_to_train.cpp.o"
  "CMakeFiles/bench_time_to_train.dir/bench_time_to_train.cpp.o.d"
  "bench_time_to_train"
  "bench_time_to_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_to_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
