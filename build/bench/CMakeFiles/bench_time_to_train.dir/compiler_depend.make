# Empty compiler generated dependencies file for bench_time_to_train.
# This may be replaced when dependencies are built.
