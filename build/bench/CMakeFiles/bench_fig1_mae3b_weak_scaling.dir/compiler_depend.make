# Empty compiler generated dependencies file for bench_fig1_mae3b_weak_scaling.
# This may be replaced when dependencies are built.
