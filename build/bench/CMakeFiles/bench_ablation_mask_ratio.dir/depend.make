# Empty dependencies file for bench_ablation_mask_ratio.
# This may be replaced when dependencies are built.
