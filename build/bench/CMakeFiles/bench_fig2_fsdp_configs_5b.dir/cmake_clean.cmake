file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fsdp_configs_5b.dir/bench_fig2_fsdp_configs_5b.cpp.o"
  "CMakeFiles/bench_fig2_fsdp_configs_5b.dir/bench_fig2_fsdp_configs_5b.cpp.o.d"
  "bench_fig2_fsdp_configs_5b"
  "bench_fig2_fsdp_configs_5b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fsdp_configs_5b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
