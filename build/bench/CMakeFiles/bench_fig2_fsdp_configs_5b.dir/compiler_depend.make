# Empty compiler generated dependencies file for bench_fig2_fsdp_configs_5b.
# This may be replaced when dependencies are built.
