# Empty compiler generated dependencies file for bench_table3_linear_probe.
# This may be replaced when dependencies are built.
