file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_linear_probe.dir/bench_table3_linear_probe.cpp.o"
  "CMakeFiles/bench_table3_linear_probe.dir/bench_table3_linear_probe.cpp.o.d"
  "bench_table3_linear_probe"
  "bench_table3_linear_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_linear_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
