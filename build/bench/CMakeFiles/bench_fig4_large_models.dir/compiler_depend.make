# Empty compiler generated dependencies file for bench_fig4_large_models.
# This may be replaced when dependencies are built.
