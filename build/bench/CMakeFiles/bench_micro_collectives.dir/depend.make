# Empty dependencies file for bench_micro_collectives.
# This may be replaced when dependencies are built.
