# Empty compiler generated dependencies file for bench_fig6_linear_probe_curves.
# This may be replaced when dependencies are built.
