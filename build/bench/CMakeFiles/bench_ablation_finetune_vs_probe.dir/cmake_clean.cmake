file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_finetune_vs_probe.dir/bench_ablation_finetune_vs_probe.cpp.o"
  "CMakeFiles/bench_ablation_finetune_vs_probe.dir/bench_ablation_finetune_vs_probe.cpp.o.d"
  "bench_ablation_finetune_vs_probe"
  "bench_ablation_finetune_vs_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_finetune_vs_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
