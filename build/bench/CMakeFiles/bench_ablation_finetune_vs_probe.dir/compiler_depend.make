# Empty compiler generated dependencies file for bench_ablation_finetune_vs_probe.
# This may be replaced when dependencies are built.
