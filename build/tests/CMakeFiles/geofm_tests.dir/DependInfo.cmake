
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_chart.cpp" "tests/CMakeFiles/geofm_tests.dir/test_chart.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_chart.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/geofm_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/geofm_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_finetune.cpp" "tests/CMakeFiles/geofm_tests.dir/test_finetune.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_finetune.cpp.o.d"
  "/root/repo/tests/test_fsdp.cpp" "tests/CMakeFiles/geofm_tests.dir/test_fsdp.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_fsdp.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/geofm_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/geofm_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_nn_layers.cpp" "tests/CMakeFiles/geofm_tests.dir/test_nn_layers.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_nn_layers.cpp.o.d"
  "/root/repo/tests/test_ops.cpp" "tests/CMakeFiles/geofm_tests.dir/test_ops.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_ops.cpp.o.d"
  "/root/repo/tests/test_optim.cpp" "tests/CMakeFiles/geofm_tests.dir/test_optim.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_optim.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/geofm_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/geofm_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/geofm_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_train.cpp" "tests/CMakeFiles/geofm_tests.dir/test_train.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_train.cpp.o.d"
  "/root/repo/tests/test_transforms.cpp" "tests/CMakeFiles/geofm_tests.dir/test_transforms.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_transforms.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/geofm_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/geofm_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geofm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
