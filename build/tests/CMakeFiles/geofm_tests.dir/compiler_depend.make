# Empty compiler generated dependencies file for geofm_tests.
# This may be replaced when dependencies are built.
