file(REMOVE_RECURSE
  "CMakeFiles/example_mae_reconstruction.dir/mae_reconstruction.cpp.o"
  "CMakeFiles/example_mae_reconstruction.dir/mae_reconstruction.cpp.o.d"
  "example_mae_reconstruction"
  "example_mae_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mae_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
