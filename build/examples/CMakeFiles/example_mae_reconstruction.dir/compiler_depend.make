# Empty compiler generated dependencies file for example_mae_reconstruction.
# This may be replaced when dependencies are built.
