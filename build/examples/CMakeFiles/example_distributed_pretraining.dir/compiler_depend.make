# Empty compiler generated dependencies file for example_distributed_pretraining.
# This may be replaced when dependencies are built.
