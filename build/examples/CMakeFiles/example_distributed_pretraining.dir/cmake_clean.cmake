file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_pretraining.dir/distributed_pretraining.cpp.o"
  "CMakeFiles/example_distributed_pretraining.dir/distributed_pretraining.cpp.o.d"
  "example_distributed_pretraining"
  "example_distributed_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
